/**
 * @file
 * Fleet-resilience suite (ctest -L resil): the consistent-hash ring
 * and its proportional-remap guarantee, retry backoff determinism,
 * the seeded chaos schedule and frame-aware proxy, typed client
 * failures across a daemon restart, deadline-aware admission
 * control, the retrying ResilientClient, ShardPool failover and
 * hedging against in-process servers, and a kill -9 crash-recovery
 * run against real chameleond subprocesses behind chaos proxies.
 *
 * In-process server tests inject a stub runner (ServerConfig::
 * runner) so they exercise resilience machinery without paying for
 * simulations; the subprocess tests at the bottom run the real
 * binary (path injected via CHAM_CHAMELEOND_BIN).
 *
 * Timing discipline: this suite must pass on a single-core
 * container, so every sleep-based assertion uses coarse margins
 * (hundreds of ms) and no test depends on threads running truly in
 * parallel.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics_registry.hh"
#include "serve/chaos_proxy.hh"
#include "serve/client.hh"
#include "serve/pool.hh"
#include "serve/resilient_client.hh"
#include "serve/result_cache.hh"
#include "serve/server.hh"
#include "serve/subprocess.hh"

using namespace chameleon;
using namespace chameleon::serve;

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

RunResult
stubResult()
{
    RunResult r;
    r.ipcGeoMean = 1.0;
    r.instructions = 1000;
    r.memRefs = 100;
    return r;
}

SubmitRunRequest
jobWithSeed(std::uint64_t seed)
{
    SubmitRunRequest req;
    req.design = "chameleon-opt";
    req.app = "stream";
    req.seed = seed;
    req.scale = 256;
    req.instrPerCore = 2'000;
    req.minRefsPerCore = 200;
    return req;
}

/** A server wired to a stub runner on an ephemeral port. */
struct StubServer
{
    explicit StubServer(
        std::function<RunResult(const SubmitRunRequest &)> runner,
        unsigned workers = 2, std::size_t queue_capacity = 64,
        std::function<void(ServerConfig &)> tweak = {})
    {
        ServerConfig cfg;
        cfg.workers = workers;
        cfg.queueCapacity = queue_capacity;
        cfg.runner = std::move(runner);
        if (tweak)
            tweak(cfg);
        server = std::make_unique<Server>(std::move(cfg));
        server->start();
    }

    std::uint16_t port() const { return server->port(); }

    Client
    client() const
    {
        ClientConfig ccfg;
        ccfg.port = server->port();
        return Client(ccfg);
    }

    std::unique_ptr<Server> server;
};

std::vector<std::uint64_t>
sampleKeys(std::size_t count)
{
    std::vector<std::uint64_t> keys;
    keys.reserve(count);
    std::uint64_t state = 0x1234'5678'9abc'def0ULL;
    for (std::size_t i = 0; i < count; ++i) {
        // SplitMix64 — deterministic spread over the key space.
        state += 0x9E3779B97F4A7C15ULL;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        keys.push_back(z ^ (z >> 31));
    }
    return keys;
}

std::vector<std::string>
shardLabels(std::size_t n)
{
    std::vector<std::string> labels;
    for (std::size_t i = 0; i < n; ++i)
        labels.push_back("127.0.0.1:" + std::to_string(9000 + i));
    return labels;
}

} // namespace

// ---------------------------------------------------------------
// HashRing: balance and proportional remap
// ---------------------------------------------------------------

TEST(HashRing, BalancesKeysAcrossShards)
{
    const HashRing ring(shardLabels(3));
    const auto keys = sampleKeys(9'000);
    std::vector<std::size_t> per(3, 0);
    for (const std::uint64_t key : keys)
        ++per[ring.primary(key)];
    for (std::size_t s = 0; s < 3; ++s) {
        // Perfect balance is 1/3; vnode placement noise stays well
        // inside [15%, 55%].
        EXPECT_GT(per[s], keys.size() * 15 / 100)
            << "shard " << s << " starved";
        EXPECT_LT(per[s], keys.size() * 55 / 100)
            << "shard " << s << " overloaded";
    }
}

TEST(HashRing, OwnersAreDistinctAndStartAtPrimary)
{
    const HashRing ring(shardLabels(3));
    for (const std::uint64_t key : sampleKeys(64)) {
        const auto owners = ring.owners(key, 3);
        ASSERT_EQ(owners.size(), 3u);
        EXPECT_EQ(owners[0], ring.primary(key));
        const std::set<std::size_t> distinct(owners.begin(),
                                             owners.end());
        EXPECT_EQ(distinct.size(), 3u);
    }
}

TEST(HashRing, RemovingOneShardRemapsOnlyItsShare)
{
    const auto labels3 = shardLabels(3);
    auto labels2 = labels3;
    labels2.pop_back(); // remove shard 2
    const HashRing before(labels3);
    const HashRing after(labels2);
    const auto keys = sampleKeys(9'000);

    std::size_t owned_by_removed = 0;
    for (const std::uint64_t key : keys) {
        const std::size_t was = before.primary(key);
        const std::size_t now = after.primary(key);
        if (was == 2) {
            ++owned_by_removed;
        } else {
            // Keys not owned by the removed shard must not move —
            // the consistent-hash contract.
            EXPECT_EQ(was, now) << "key moved between survivors";
        }
    }
    const double moved = ringRemapFraction(before, after, keys);
    EXPECT_NEAR(moved,
                static_cast<double>(owned_by_removed) /
                    static_cast<double>(keys.size()),
                1e-9);
    // The removed shard owned about a third.
    EXPECT_GT(moved, 0.15);
    EXPECT_LT(moved, 0.55);
}

TEST(HashRing, AddingOneShardRemapsProportionally)
{
    const HashRing before(shardLabels(3));
    const HashRing after(shardLabels(4));
    const auto keys = sampleKeys(9'000);
    for (const std::uint64_t key : keys) {
        const std::size_t was = before.primary(key);
        const std::size_t now = after.primary(key);
        if (was != now) {
            EXPECT_EQ(now, 3u) << "remapped key must land on the "
                                  "new shard, not shuffle survivors";
        }
    }
    const double moved = ringRemapFraction(before, after, keys);
    // Ideal is 1/4; allow generous vnode noise.
    EXPECT_GT(moved, 0.10);
    EXPECT_LT(moved, 0.45);
}

// ---------------------------------------------------------------
// Retry policy: determinism and classification
// ---------------------------------------------------------------

TEST(RetryPolicy, BackoffIsDeterministicAndBounded)
{
    RetryPolicy pol;
    pol.baseBackoffMs = 20;
    pol.maxBackoffMs = 200;
    pol.backoffMultiplier = 2.0;
    pol.jitter = 0.5;
    pol.jitterSeed = 99;

    std::uint64_t s1 = pol.jitterSeed, s2 = pol.jitterSeed;
    for (unsigned attempt = 0; attempt < 8; ++attempt) {
        const std::uint32_t a = retryBackoffMs(pol, attempt, s1);
        const std::uint32_t b = retryBackoffMs(pol, attempt, s2);
        EXPECT_EQ(a, b) << "same seed must give the same jitter";
        EXPECT_LE(a, pol.maxBackoffMs);
        // Jitter shaves at most half; the floor is base * 2^n / 2.
        const double raw =
            std::min<double>(20.0 * (1u << attempt), 200.0);
        EXPECT_GE(a, static_cast<std::uint32_t>(raw * 0.5) - 1);
    }

    std::uint64_t s3 = 1234;
    bool differs = false;
    for (unsigned attempt = 0; attempt < 8; ++attempt)
        if (retryBackoffMs(pol, attempt, s3) !=
            retryBackoffMs(pol, attempt, s1))
            differs = true;
    EXPECT_TRUE(differs) << "different seeds should jitter apart";
}

TEST(RetryPolicy, ClassifiesRetriableErrors)
{
    const RetryPolicy pol;
    auto retriable = [&](ServeErrorKind kind, ErrCode code) {
        return serveErrorRetriable(ServeError(kind, code, "x"), pol);
    };
    EXPECT_TRUE(retriable(ServeErrorKind::ConnectFailed,
                          ErrCode::None));
    EXPECT_TRUE(retriable(ServeErrorKind::SendFailed, ErrCode::None));
    EXPECT_TRUE(retriable(ServeErrorKind::Timeout, ErrCode::None));
    EXPECT_TRUE(retriable(ServeErrorKind::Disconnected,
                          ErrCode::None));
    EXPECT_TRUE(retriable(ServeErrorKind::ProtocolError,
                          ErrCode::None));
    EXPECT_TRUE(retriable(ServeErrorKind::ServerError, ErrCode::Busy));
    EXPECT_TRUE(retriable(ServeErrorKind::ServerError,
                          ErrCode::UnknownJob));
    EXPECT_TRUE(retriable(ServeErrorKind::ServerError,
                          ErrCode::Internal));
    EXPECT_FALSE(retriable(ServeErrorKind::ServerError,
                           ErrCode::BadRequest));
    EXPECT_FALSE(retriable(ServeErrorKind::ServerError,
                           ErrCode::Draining));
    EXPECT_FALSE(retriable(ServeErrorKind::Cancelled, ErrCode::None));
    EXPECT_FALSE(retriable(ServeErrorKind::RetriesExhausted,
                           ErrCode::None));

    RetryPolicy drainy;
    drainy.retryDraining = true;
    EXPECT_TRUE(serveErrorRetriable(
        ServeError(ServeErrorKind::ServerError, ErrCode::Draining,
                   "x"),
        drainy));
}

// ---------------------------------------------------------------
// Chaos schedule: pure, seeded, reproducible
// ---------------------------------------------------------------

TEST(ChaosSchedule, DeterministicPerCoordinates)
{
    ChaosConfig cfg;
    cfg.seed = 7;
    cfg.dropRate = 0.1;
    cfg.delayRate = 0.1;
    cfg.dupRate = 0.1;
    cfg.splitRate = 0.1;
    cfg.resetRate = 0.1;

    for (std::uint64_t conn = 0; conn < 8; ++conn)
        for (std::uint64_t frame = 0; frame < 64; ++frame)
            for (const ChaosDir dir : {ChaosDir::ClientToServer,
                                       ChaosDir::ServerToClient})
                EXPECT_EQ(plannedAction(cfg, conn, dir, frame),
                          plannedAction(cfg, conn, dir, frame));

    EXPECT_EQ(scheduleDigest(cfg, 16, 32),
              scheduleDigest(cfg, 16, 32));
    ChaosConfig other = cfg;
    other.seed = 8;
    EXPECT_NE(scheduleDigest(cfg, 16, 32),
              scheduleDigest(other, 16, 32));
}

TEST(ChaosSchedule, ZeroRatesAlwaysForward)
{
    const ChaosConfig cfg; // all rates 0
    for (std::uint64_t frame = 0; frame < 256; ++frame)
        EXPECT_EQ(plannedAction(cfg, 0, ChaosDir::ServerToClient,
                                frame),
                  ChaosAction::Forward);
}

TEST(ChaosSchedule, RatesRoughlyMatchFrequencies)
{
    ChaosConfig cfg;
    cfg.seed = 3;
    cfg.dropRate = 0.25;
    std::size_t drops = 0;
    constexpr std::size_t kFrames = 4'000;
    for (std::uint64_t f = 0; f < kFrames; ++f)
        if (plannedAction(cfg, 1, ChaosDir::ClientToServer, f) ==
            ChaosAction::Drop)
            ++drops;
    EXPECT_GT(drops, kFrames / 6);  // > 16%
    EXPECT_LT(drops, kFrames / 3);  // < 33%
}

// ---------------------------------------------------------------
// ChaosProxy: relaying with injected faults
// ---------------------------------------------------------------

TEST(ChaosProxy, CleanPassthrough)
{
    StubServer srv([](const SubmitRunRequest &) {
        return stubResult();
    });
    ChaosConfig cc;
    cc.targetPort = srv.port();
    ChaosProxy proxy(cc);
    const std::uint16_t port = proxy.start();

    ClientConfig ccfg;
    ccfg.port = port;
    Client client(ccfg);
    const SubmitRunReply sub = client.submitRun(jobWithSeed(1));
    const JobResultReply res = client.result(sub.jobId, 5'000);
    EXPECT_EQ(res.state, JobState::Ok);

    const ChaosStats st = proxy.stats();
    EXPECT_EQ(st.connsAccepted, 1u);
    EXPECT_GT(st.framesForwarded, 0u);
    EXPECT_EQ(st.framesDropped, 0u);
}

TEST(ChaosProxy, DelayHoldsReplies)
{
    StubServer srv([](const SubmitRunRequest &) {
        return stubResult();
    });
    ChaosConfig cc;
    cc.targetPort = srv.port();
    cc.delayRate = 1.0; // every frame
    cc.delayMs = 400;
    cc.chaosUpstream = false; // downstream only
    ChaosProxy proxy(cc);
    const std::uint16_t port = proxy.start();

    ClientConfig ccfg;
    ccfg.port = port;
    Client client(ccfg);
    const auto t0 = Clock::now();
    const SubmitRunReply sub = client.submitRun(jobWithSeed(2));
    EXPECT_GE(msSince(t0), 300.0)
        << "the submit reply should have been held ~400 ms";
    const JobResultReply res = client.result(sub.jobId, 5'000);
    EXPECT_EQ(res.state, JobState::Ok);
    EXPECT_GT(proxy.stats().framesDelayed, 0u);
}

TEST(ChaosProxy, DeadUpstreamClosesClient)
{
    ChaosConfig cc;
    cc.targetPort = 1; // nothing listens here
    ChaosProxy proxy(cc);
    const std::uint16_t port = proxy.start();

    ClientConfig ccfg;
    ccfg.port = port;
    ccfg.ioTimeoutMs = 2'000;
    Client client(ccfg);
    EXPECT_THROW(client.health(), ServeError);
    // The client can observe the close a beat before the relay
    // thread books the failed dial; poll briefly.
    const auto t0 = Clock::now();
    while (proxy.stats().upstreamDialFailures == 0 &&
           msSince(t0) < 2'000.0)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(proxy.stats().upstreamDialFailures, 1u);
}

TEST(ChaosProxy, DuplicatedFramesRecoverViaResilientClient)
{
    StubServer srv([](const SubmitRunRequest &) {
        return stubResult();
    });
    ChaosConfig cc;
    cc.targetPort = srv.port();
    cc.dupRate = 0.5;
    cc.chaosUpstream = false;
    // The schedule is a pure function of (seed, conn, dir, frame),
    // so pick a seed where the first connection's submit reply is
    // duplicated (desyncing the stream and forcing a retry) while
    // the second connection forwards it cleanly (letting the retry
    // recover). plannedAction() makes this choice deterministic.
    for (cc.seed = 1;; ++cc.seed)
        if (plannedAction(cc, 0, ChaosDir::ServerToClient, 0) ==
                ChaosAction::Duplicate &&
            plannedAction(cc, 1, ChaosDir::ServerToClient, 0) ==
                ChaosAction::Forward &&
            plannedAction(cc, 1, ChaosDir::ServerToClient, 1) ==
                ChaosAction::Forward)
            break;
    ChaosProxy proxy(cc);
    const std::uint16_t port = proxy.start();

    ClientConfig ccfg;
    ccfg.port = port;
    RetryPolicy pol;
    pol.maxAttempts = 6;
    pol.baseBackoffMs = 5;
    pol.deadlineMs = 20'000;
    pol.pollQuantumMs = 100;
    ResilientClient rc(ccfg, pol);
    AttemptStats stats;
    // The duplicated submit reply leaves a stale frame in the
    // stream; the next read surfaces a typed ProtocolError, which
    // must reconnect-and-retry to a clean result rather than wedge.
    const JobResultReply res = rc.runJob(jobWithSeed(3), &stats);
    EXPECT_TRUE(res.state == JobState::Ok ||
                res.state == JobState::Degraded);
    EXPECT_GE(stats.retries, 1u);
    EXPECT_GT(proxy.stats().framesDuplicated, 0u);
}

// ---------------------------------------------------------------
// Client across a daemon restart (satellite: one typed error, then
// lazy reconnect on the same Client object)
// ---------------------------------------------------------------

TEST(ClientRestart, OneTypedErrorThenReconnects)
{
    auto runner = [](const SubmitRunRequest &) {
        return stubResult();
    };
    auto first = std::make_unique<StubServer>(runner);
    const std::uint16_t port = first->port();

    ClientConfig ccfg;
    ccfg.port = port;
    ccfg.ioTimeoutMs = 2'000;
    Client client(ccfg);
    EXPECT_EQ(client.health().state, 0);
    EXPECT_TRUE(client.connected());

    // Kill the daemon under the established connection.
    first.reset();

    // The next call surfaces exactly one typed connection-level
    // error (which closes the socket)...
    try {
        client.health();
        FAIL() << "health() against a dead daemon must throw";
    } catch (const ServeError &e) {
        EXPECT_TRUE(e.kind() == ServeErrorKind::SendFailed ||
                    e.kind() == ServeErrorKind::Disconnected ||
                    e.kind() == ServeErrorKind::ConnectFailed)
            << "got " << serveErrorKindLabel(e.kind());
    }
    EXPECT_FALSE(client.connected());

    // ...and once a new daemon owns the port, the SAME Client
    // object lazily reconnects — no rebuild required.
    StubServer second(runner, 2, 64, [port](ServerConfig &cfg) {
        cfg.port = port;
    });
    EXPECT_EQ(client.health().state, 0);
    const SubmitRunReply sub = client.submitRun(jobWithSeed(4));
    EXPECT_GT(sub.jobId, 0u);
}

// ---------------------------------------------------------------
// Server: deadline-aware admission + Busy retry-after hints
// ---------------------------------------------------------------

TEST(Admission, RejectsWhenQueueWaitExceedsDeadline)
{
    std::mutex gate;
    std::atomic<bool> seeded{false};
    auto runner = [&](const SubmitRunRequest &) {
        if (!seeded.load()) {
            // Seed the service-time EWMA with a honest 200 ms job.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(200));
            seeded.store(true);
        } else {
            std::lock_guard<std::mutex> hold(gate);
        }
        return stubResult();
    };
    StubServer srv(runner, /*workers=*/1, /*queue=*/64);
    Client client = srv.client();

    // Seed EWMA.
    SubmitRunRequest seed_job = jobWithSeed(100);
    seed_job.noCache = true;
    const SubmitRunReply s0 = client.submitRun(seed_job);
    const JobResultReply r0 = client.result(s0.jobId, 10'000);
    ASSERT_EQ(r0.state, JobState::Ok);

    // Hold the worker and pile up a queue: wait estimate becomes
    // ewma (~200 ms) * pending / 1 worker.
    std::unique_lock<std::mutex> hold(gate);
    for (std::uint64_t i = 0; i < 12; ++i) {
        SubmitRunRequest req = jobWithSeed(200 + i);
        req.noCache = true; // no deadline: always admitted
        client.submitRun(req);
    }

    // ~12 queued * 200 ms >> a 300 ms deadline: must be rejected
    // with Busy and a positive retry-after hint.
    SubmitRunRequest late = jobWithSeed(999);
    late.noCache = true;
    late.deadlineMs = 300;
    try {
        client.submitRun(late);
        FAIL() << "admission should have rejected the job";
    } catch (const ServeError &e) {
        EXPECT_EQ(e.kind(), ServeErrorKind::ServerError);
        EXPECT_EQ(e.code(), ErrCode::Busy);
        EXPECT_GT(e.retryAfterMs(), 0u);
    }
    EXPECT_EQ(srv.server->stats().admissionRejected, 1u);
    EXPECT_NE(srv.server->metricsJson().find(
                  "serve_admission_rejected"),
              std::string::npos);

    hold.unlock();
}

TEST(Admission, FullQueueBusyCarriesRetryHint)
{
    std::mutex gate;
    auto runner = [&](const SubmitRunRequest &) {
        std::lock_guard<std::mutex> hold(gate);
        return stubResult();
    };
    StubServer srv(runner, /*workers=*/1, /*queue=*/1);
    Client client = srv.client();

    std::unique_lock<std::mutex> hold(gate);
    SubmitRunRequest a = jobWithSeed(1);
    a.noCache = true;
    client.submitRun(a); // running (blocked on the gate)
    // Give the worker a beat to dequeue the first job.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    SubmitRunRequest b = jobWithSeed(2);
    b.noCache = true;
    client.submitRun(b); // fills the 1-slot queue

    SubmitRunRequest c = jobWithSeed(3);
    c.noCache = true;
    try {
        client.submitRun(c);
        FAIL() << "full queue must answer Busy";
    } catch (const ServeError &e) {
        EXPECT_EQ(e.code(), ErrCode::Busy);
        EXPECT_GE(e.retryAfterMs(), 1u);
    }
    hold.unlock();
}

TEST(ResilientClientSuite, RetriesBusyUntilAdmitted)
{
    // An atomic gate (not a mutex) holds the worker: the release
    // below happens on another thread, and a mutex may only be
    // unlocked by its locking thread.
    std::atomic<bool> release{false};
    auto runner = [&](const SubmitRunRequest &) {
        while (!release.load())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        return stubResult();
    };
    StubServer srv(runner, /*workers=*/1, /*queue=*/1);

    Client filler = srv.client();
    SubmitRunRequest a = jobWithSeed(10);
    a.noCache = true;
    filler.submitRun(a);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    SubmitRunRequest b = jobWithSeed(11);
    b.noCache = true;
    filler.submitRun(b);

    ClientConfig ccfg;
    ccfg.port = srv.port();
    RetryPolicy pol;
    pol.maxAttempts = 20;
    pol.baseBackoffMs = 50;
    pol.maxBackoffMs = 200;
    pol.deadlineMs = 30'000;
    ResilientClient rc(ccfg, pol);

    std::thread releaser([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
        release.store(true);
    });
    AttemptStats stats;
    SubmitRunRequest c = jobWithSeed(12);
    c.noCache = true;
    const JobResultReply res = rc.runJob(c, &stats);
    releaser.join();
    EXPECT_EQ(res.state, JobState::Ok);
    EXPECT_GE(stats.retries, 1u) << "the Busy queue must have "
                                    "forced at least one retry";
}

TEST(ResilientClientSuite, ExhaustionThrowsTypedError)
{
    ClientConfig ccfg;
    ccfg.port = 1; // connection refused
    ccfg.connectTimeoutMs = 200;
    RetryPolicy pol;
    pol.maxAttempts = 3;
    pol.baseBackoffMs = 5;
    pol.deadlineMs = 5'000;
    ResilientClient rc(ccfg, pol);
    AttemptStats stats;
    try {
        rc.runJob(jobWithSeed(1), &stats);
        FAIL() << "must exhaust retries";
    } catch (const ServeError &e) {
        EXPECT_EQ(e.kind(), ServeErrorKind::RetriesExhausted);
    }
    EXPECT_EQ(stats.attempts, 3u);
    EXPECT_EQ(stats.retries, 2u);
}

// ---------------------------------------------------------------
// ShardPool: placement, failover, hedging, metrics
// ---------------------------------------------------------------

TEST(ShardPoolSuite, FailsOverWhenPrimaryDies)
{
    auto runner = [](const SubmitRunRequest &) {
        return stubResult();
    };
    auto srv0 = std::make_unique<StubServer>(runner);
    StubServer srv1(runner);

    PoolConfig pc;
    pc.endpoints = {Endpoint{"127.0.0.1", srv0->port()},
                    Endpoint{"127.0.0.1", srv1.port()}};
    pc.client.connectTimeoutMs = 300;
    pc.client.ioTimeoutMs = 2'000;
    pc.retry.maxAttempts = 2;
    pc.retry.baseBackoffMs = 5;
    pc.retry.deadlineMs = 10'000;
    pc.retry.pollQuantumMs = 100;
    pc.probeIntervalMs = 100;
    pc.hedgeEnabled = false;
    ShardPool pool(pc);

    // Kill shard 0; every job must still succeed via shard 1, and
    // jobs whose ring primary was shard 0 count failovers.
    srv0.reset();
    unsigned owned_by_dead = 0;
    for (std::uint64_t seed = 0; seed < 12; ++seed) {
        const SubmitRunRequest req = jobWithSeed(seed);
        const PoolOutcome out = pool.runJob(req);
        ASSERT_TRUE(out.ok) << out.error;
        EXPECT_EQ(out.shard, 1u);
        if (out.failovers > 0)
            ++owned_by_dead;
    }
    EXPECT_GT(owned_by_dead, 0u)
        << "some keys must have been owned by the dead shard";
    const PoolStats st = pool.stats();
    EXPECT_GT(st.failovers, 0u);
    EXPECT_EQ(st.jobs, 12u);
    // The health prober needs a couple of 100 ms ticks to cross the
    // consecutive-failure threshold and eject shard 0.
    const auto t0 = Clock::now();
    while (pool.shardUp(0) && msSince(t0) < 5'000.0)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(pool.shardUp(0));
    EXPECT_TRUE(pool.shardUp(1));
    EXPECT_GT(pool.stats().shardsEjected, 0u);
}

TEST(ShardPoolSuite, HedgeRescuesStragglerShard)
{
    // Shard 0 is pathologically slow; shard 1 is fast. Hedged jobs
    // whose primary is shard 0 must finish long before the 1500 ms
    // straggler by winning on shard 1.
    auto slow = [](const SubmitRunRequest &) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(1'500));
        return stubResult();
    };
    auto fast = [](const SubmitRunRequest &) {
        return stubResult();
    };
    StubServer srv0(slow);
    StubServer srv1(fast);

    PoolConfig pc;
    pc.endpoints = {Endpoint{"127.0.0.1", srv0.port()},
                    Endpoint{"127.0.0.1", srv1.port()}};
    pc.client.ioTimeoutMs = 5'000;
    pc.retry.maxAttempts = 2;
    pc.retry.deadlineMs = 20'000;
    pc.retry.pollQuantumMs = 100;
    pc.probeIntervalMs = 0; // no prober: isolate hedging
    pc.hedgeEnabled = true;
    pc.hedgeDelayMs = 60;
    ShardPool pool(pc);

    // Find a request whose primary is the slow shard.
    std::uint64_t seed = 0;
    while (pool.primaryFor(jobWithSeed(seed)) != 0)
        ++seed;

    const auto t0 = Clock::now();
    const PoolOutcome out = pool.runJob(jobWithSeed(seed));
    const double ms = msSince(t0);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_TRUE(out.hedged);
    EXPECT_TRUE(out.hedgeWon);
    EXPECT_EQ(out.shard, 1u);
    EXPECT_LT(ms, 1'000.0)
        << "hedge must beat the 1500 ms straggler";

    const PoolStats st = pool.stats();
    EXPECT_GE(st.hedgesFired, 1u);
    EXPECT_GE(st.hedgesWon, 1u);
}

TEST(ShardPoolSuite, RegistersFleetMetrics)
{
    auto runner = [](const SubmitRunRequest &) {
        return stubResult();
    };
    StubServer srv(runner);
    PoolConfig pc;
    pc.endpoints = {Endpoint{"127.0.0.1", srv.port()}};
    pc.probeIntervalMs = 0;
    ShardPool pool(pc);

    MetricsRegistry reg;
    pool.registerMetrics(reg);
    for (const char *name :
         {"serve_retries", "serve_failovers", "serve_hedges_fired",
          "serve_hedges_won", "pool_shard_up", "pool_shard_ejected"})
        EXPECT_TRUE(reg.has(name)) << name;
    EXPECT_DOUBLE_EQ(reg.value("pool_shard_up"), 1.0);
    EXPECT_DOUBLE_EQ(reg.value("serve_retries"), 0.0);
}

TEST(ShardPoolSuite, ProbeEjectsDrainingShard)
{
    auto runner = [](const SubmitRunRequest &) {
        return stubResult();
    };
    StubServer srv0(runner);
    StubServer srv1(runner);
    PoolConfig pc;
    pc.endpoints = {Endpoint{"127.0.0.1", srv0.port()},
                    Endpoint{"127.0.0.1", srv1.port()}};
    pc.probeIntervalMs = 0; // probe manually for determinism
    pc.probeFailThreshold = 2;
    pc.hedgeEnabled = false;
    ShardPool pool(pc);

    srv0.server->requestDrain();
    pool.probeOnce();
    EXPECT_TRUE(pool.shardUp(0)) << "one failure is not ejection";
    pool.probeOnce();
    EXPECT_FALSE(pool.shardUp(0)) << "draining shard must eject "
                                     "after the failure threshold";
    EXPECT_TRUE(pool.shardUp(1));
    EXPECT_EQ(pool.stats().shardsEjected, 1u);
}

// ---------------------------------------------------------------
// Subprocess + real chameleond: crash recovery under chaos
// ---------------------------------------------------------------

#ifdef CHAM_CHAMELEOND_BIN

TEST(SubprocessSuite, SpawnReadPortAndDrain)
{
    Subprocess daemon;
    ASSERT_TRUE(daemon.spawn({CHAM_CHAMELEOND_BIN, "--port", "0",
                              "--workers", "1", "--quiet"}));
    const std::uint16_t port = daemon.readPortLine(10'000);
    ASSERT_GT(port, 0u);

    ClientConfig ccfg;
    ccfg.port = port;
    Client client(ccfg);
    EXPECT_EQ(client.health().state, 0);

    daemon.kill(SIGTERM);
    EXPECT_EQ(daemon.wait(), 0) << "graceful drain must exit 0";
}

TEST(CrashRecovery, Kill9UnderChaosAllJobsResolve)
{
    // Two real daemons behind mildly chaotic proxies; SIGKILL one
    // mid-burst. Every job must resolve (no hangs), the survivor
    // absorbs the dead shard's ring share, and the pool records the
    // failovers.
    Subprocess daemons[2];
    std::uint16_t daemonPorts[2];
    for (int s = 0; s < 2; ++s) {
        ASSERT_TRUE(daemons[s].spawn({CHAM_CHAMELEOND_BIN, "--port",
                                      "0", "--workers", "2",
                                      "--quiet"}));
        daemonPorts[s] = daemons[s].readPortLine(10'000);
        ASSERT_GT(daemonPorts[s], 0u);
    }

    std::vector<std::unique_ptr<ChaosProxy>> proxies;
    std::vector<Endpoint> endpoints;
    for (int s = 0; s < 2; ++s) {
        ChaosConfig cc;
        cc.targetPort = daemonPorts[s];
        cc.seed = 41 + static_cast<std::uint64_t>(s);
        cc.dropRate = 0.01;
        cc.delayRate = 0.01;
        cc.delayMs = 30;
        proxies.push_back(std::make_unique<ChaosProxy>(cc));
        endpoints.push_back(
            Endpoint{"127.0.0.1", proxies.back()->start()});
    }

    PoolConfig pc;
    pc.endpoints = endpoints;
    pc.client.connectTimeoutMs = 300;
    pc.client.ioTimeoutMs = 1'500;
    pc.retry.maxAttempts = 4;
    pc.retry.baseBackoffMs = 10;
    pc.retry.maxBackoffMs = 200;
    pc.retry.deadlineMs = 30'000;
    pc.retry.pollQuantumMs = 150;
    pc.probeIntervalMs = 100;
    pc.hedgeEnabled = true;
    pc.hedgeDelayMs = 250;
    ShardPool pool(pc);

    constexpr unsigned kJobs = 24;
    constexpr unsigned kThreads = 3;
    std::atomic<unsigned> nextJob{0};
    std::atomic<unsigned> done{0};
    std::atomic<unsigned> ok{0};

    std::thread killer([&] {
        while (done.load() < kJobs / 3)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        daemons[0].kill(SIGKILL);
        daemons[0].wait();
    });

    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t)
        workers.emplace_back([&] {
            for (;;) {
                const unsigned idx = nextJob.fetch_add(1);
                if (idx >= kJobs)
                    return;
                const PoolOutcome out =
                    pool.runJob(jobWithSeed(5'000 + idx));
                done.fetch_add(1);
                if (out.ok)
                    ok.fetch_add(1);
                else
                    ADD_FAILURE() << "job " << idx
                                  << " failed: " << out.error;
            }
        });
    for (std::thread &t : workers)
        t.join();
    killer.join();

    EXPECT_EQ(done.load(), kJobs) << "every job must resolve";
    EXPECT_EQ(ok.load(), kJobs);
    const PoolStats st = pool.stats();
    EXPECT_GT(st.failovers, 0u)
        << "the dead shard's keys must have failed over";
    EXPECT_FALSE(pool.shardUp(0));
    EXPECT_TRUE(pool.shardUp(1));

    daemons[1].kill(SIGTERM);
    EXPECT_EQ(daemons[1].wait(), 0)
        << "the survivor must drain cleanly with zero lost jobs";
}

#endif // CHAM_CHAMELEOND_BIN
