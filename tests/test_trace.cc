/**
 * @file
 * Observability-layer tests (ctest -L obs): trace-sink ring
 * semantics, cross-thread event ordering, Chrome-trace JSON
 * round-trips through the reader/analyzer, a checked-in golden trace
 * compared event-for-event, the metrics registry, and an end-to-end
 * fault-injected System run whose exported trace must carry the mode
 * switch / swap / ISA / retirement story with monotonic timestamps.
 *
 * Regenerate the golden trace after an intentional format change:
 *   CHAM_GOLDEN_REGEN=1 ./tests/test_trace
 * then commit tests/golden/trace_golden.json with the change.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hh"
#include "common/timeline.hh"
#include "obs/metrics_registry.hh"
#include "obs/trace_reader.hh"
#include "obs/trace_sink.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"

using namespace chameleon;

#ifndef CHAM_GOLDEN_DIR
#error "build must define CHAM_GOLDEN_DIR"
#endif

namespace
{

/** Record a deterministic little scenario into @p sink. */
void
recordScenario(TraceSink &sink)
{
    sink.record(100, TraceKind::IsaAlloc, 0x4000);
    sink.record(220, TraceKind::ModeSwitch, 7, 0,
                static_cast<std::uint64_t>(ModeSwitchTrigger::IsaAlloc));
    sink.record(350, TraceKind::HotSwap, 7, 1, 3);
    sink.record(500, TraceKind::MajorFault, 2, 0x1234);
    sink.record(720, TraceKind::EccCorrected, 0, 0x8840);
    sink.record(900, TraceKind::SegmentRetired, 7);
    sink.recordCounter(1000, TraceKind::CounterHitRate, 0.75);
    sink.recordCounter(1000, TraceKind::CounterFootprint, 1.5e6);
}

std::string
goldenPath()
{
    return std::string(CHAM_GOLDEN_DIR) + "/trace_golden.json";
}

} // namespace

TEST(TraceEvent, KindTableIsConsistent)
{
    std::set<std::string> names;
    for (std::size_t k = 0; k < traceKindCount; ++k) {
        const auto kind = static_cast<TraceKind>(k);
        const char *name = traceKindName(kind);
        ASSERT_NE(name, nullptr);
        EXPECT_FALSE(std::string(name).empty());
        EXPECT_TRUE(names.insert(name).second)
            << "duplicate kind name " << name;
        const char *cat = traceCategoryName(traceCategoryOf(kind));
        ASSERT_NE(cat, nullptr);
        EXPECT_FALSE(std::string(cat).empty());
        EXPECT_EQ(traceKindIsCounter(kind),
                  traceCategoryOf(kind) == TraceCategory::Counter);
        // Arg names must be a prefix: no gaps like (a0, null, a2).
        bool seen_null = false;
        for (std::size_t i = 0; i < 3; ++i) {
            if (traceArgName(kind, i) == nullptr)
                seen_null = true;
            else
                EXPECT_FALSE(seen_null)
                    << name << " has a gap in its arg names";
        }
    }
}

TEST(TraceEvent, CounterValueRoundTrips)
{
    for (double v : {0.0, 1.0, -3.25, 0.6180339887, 1.5e18, -0.0})
        EXPECT_EQ(traceDecodeValue(traceEncodeValue(v)), v);
}

TEST(TraceSink, RingWraparoundCountsDropsNotSilent)
{
    TraceSinkConfig cfg;
    cfg.ringEvents = 16;
    TraceSink sink(cfg);
    for (std::uint64_t i = 0; i < 100; ++i)
        sink.record(i, TraceKind::IsaAlloc, i);

    const TraceSinkStats st = sink.stats();
    EXPECT_EQ(st.recorded, 100u);
    EXPECT_EQ(st.dropped, 84u);
    EXPECT_EQ(st.retained, 16u);

    // Overwrite-oldest: the survivors are exactly the last 16 events.
    const auto events = sink.sortedEvents();
    ASSERT_EQ(events.size(), 16u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].when, 84 + i);
        EXPECT_EQ(events[i].arg0, 84 + i);
    }

    // The exporter reports the loss in otherData.
    ParsedTrace parsed;
    std::string error;
    ASSERT_TRUE(loadChromeTrace(sink.toChromeJson(), parsed, error))
        << error;
    EXPECT_EQ(parsed.recorded, 100u);
    EXPECT_EQ(parsed.dropped, 84u);
    EXPECT_EQ(parsed.events.size(), 16u);
}

TEST(TraceSink, CrossThreadEventsMergeInTimestampOrder)
{
    TraceSink sink;
    constexpr std::uint64_t perThread = 2000;
    std::vector<std::thread> threads;
    for (std::uint64_t t = 0; t < 3; ++t) {
        threads.emplace_back([&sink, t] {
            for (std::uint64_t i = 0; i < perThread; ++i)
                sink.record(i * 3 + t, TraceKind::IsaAlloc, t, i);
        });
    }
    for (auto &th : threads)
        th.join();

    const TraceSinkStats st = sink.stats();
    EXPECT_EQ(st.recorded, 3 * perThread);
    EXPECT_EQ(st.dropped, 0u);

    const auto events = sink.sortedEvents();
    ASSERT_EQ(events.size(), 3 * perThread);
    std::uint64_t seen[3] = {0, 0, 0};
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (i > 0) {
            EXPECT_GE(events[i].when, events[i - 1].when);
        }
        // The (when = 3i + t) encoding makes the global order total:
        // every event lands in its exact slot.
        EXPECT_EQ(events[i].when, i);
        ++seen[events[i].arg0];
    }
    for (std::uint64_t t = 0; t < 3; ++t)
        EXPECT_EQ(seen[t], perThread);
}

TEST(TraceSink, ChromeJsonRoundTripsThroughReader)
{
    TraceSink sink;
    recordScenario(sink);

    ParsedTrace parsed;
    std::string error;
    ASSERT_TRUE(loadChromeTrace(sink.toChromeJson(), parsed, error))
        << error;
    ASSERT_EQ(parsed.events.size(), 8u);
    EXPECT_EQ(parsed.recorded, 8u);
    EXPECT_EQ(parsed.dropped, 0u);

    // Names and categories survive, in timestamp order.
    EXPECT_EQ(parsed.events[0].name, "isa_alloc");
    EXPECT_EQ(parsed.events[0].cat, "isa");
    EXPECT_EQ(parsed.events[1].name, "mode_switch");
    EXPECT_EQ(parsed.events[1].cat, "mode");
    EXPECT_EQ(parsed.events[1].arg("group"), 7.0);
    EXPECT_EQ(parsed.events[2].name, "hot_swap");
    EXPECT_EQ(parsed.events[5].name, "segment_retired");

    // Counter samples become "ph":"C" with their decoded value.
    EXPECT_EQ(parsed.events[6].ph, "C");
    EXPECT_EQ(parsed.events[6].name, "hit_rate");
    EXPECT_DOUBLE_EQ(parsed.events[6].arg("value"), 0.75);
    EXPECT_EQ(parsed.events[7].name, "footprint_bytes");
    EXPECT_DOUBLE_EQ(parsed.events[7].arg("value"), 1.5e6);

    // Timestamps are microseconds at the configured clock (the
    // exporter keeps millisecond-of-a-microsecond resolution) and
    // monotonic.
    EXPECT_NEAR(parsed.events[0].ts, 100.0 / 3600.0, 5e-4);
    for (std::size_t i = 1; i < parsed.events.size(); ++i)
        EXPECT_GE(parsed.events[i].ts, parsed.events[i - 1].ts);

    // The analyzer sees every category the scenario touched.
    const auto stats = analyzeTrace(parsed);
    std::uint64_t total = 0;
    std::set<std::string> cats;
    for (const auto &s : stats) {
        total += s.events;
        cats.insert(s.category);
    }
    EXPECT_EQ(total, 8u);
    for (const char *want :
         {"isa", "mode", "swap", "os", "fault", "counter"})
        EXPECT_TRUE(cats.count(want)) << want;
    EXPECT_FALSE(
        formatTraceReport(parsed, stats).find("events: 8") ==
        std::string::npos);
}

TEST(TraceSink, GoldenTraceMatchesEventForEvent)
{
    TraceSink sink;
    recordScenario(sink);
    const std::string json = sink.toChromeJson();

    if (std::getenv("CHAM_GOLDEN_REGEN")) {
        std::ofstream out(goldenPath());
        ASSERT_TRUE(out.good());
        out << json;
        GTEST_SKIP() << "regenerated " << goldenPath();
    }

    ParsedTrace now, golden;
    std::string error;
    ASSERT_TRUE(loadChromeTrace(json, now, error)) << error;
    ASSERT_TRUE(loadChromeTraceFile(goldenPath(), golden, error))
        << error;

    EXPECT_EQ(now.recorded, golden.recorded);
    EXPECT_EQ(now.dropped, golden.dropped);
    ASSERT_EQ(now.events.size(), golden.events.size());
    for (std::size_t i = 0; i < now.events.size(); ++i) {
        const ParsedTraceEvent &a = now.events[i];
        const ParsedTraceEvent &b = golden.events[i];
        EXPECT_EQ(a.name, b.name) << "event " << i;
        EXPECT_EQ(a.cat, b.cat) << "event " << i;
        EXPECT_EQ(a.ph, b.ph) << "event " << i;
        EXPECT_DOUBLE_EQ(a.ts, b.ts) << "event " << i;
        ASSERT_EQ(a.args.size(), b.args.size()) << "event " << i;
        for (std::size_t j = 0; j < a.args.size(); ++j) {
            EXPECT_EQ(a.args[j].first, b.args[j].first)
                << "event " << i << " arg " << j;
            EXPECT_DOUBLE_EQ(a.args[j].second, b.args[j].second)
                << "event " << i << " arg " << j;
        }
    }
}

TEST(TraceSink, DumpRecentForGroupShowsGroupHistory)
{
    TraceSink sink;
    for (std::uint64_t i = 0; i < 10; ++i)
        sink.record(i, TraceKind::HotSwap, /*group=*/i % 2, 0, 1);
    sink.record(50, TraceKind::SegmentRetired, /*group=*/1);

    testing::internal::CaptureStderr();
    sink.dumpRecentForGroup(1);
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("segment_retired"), std::string::npos) << err;
    EXPECT_NE(err.find("hot_swap"), std::string::npos) << err;
}

TEST(TraceSink, PerCellPathsAreSanitizedAndUnique)
{
    EXPECT_EQ(perCellObsPath("out/t.json", 3, "chameleon-opt",
                             "bwaves#1 x"),
              "out/t.cell3.chameleon-opt.bwaves-1-x.json");
    // No extension: the tag is appended.
    EXPECT_EQ(perCellObsPath("trace", 0, "pom", "lbm"),
              "trace.cell0.pom.lbm");
    // A dot in a directory name is not an extension.
    EXPECT_EQ(perCellObsPath("out.d/trace", 1, "pom", "lbm"),
              "out.d/trace.cell1.pom.lbm");
}

TEST(Stats, MeanTrackerHandlesNegativeOnlyStreams)
{
    // Regression: min/max used sentinel 0.0, so a stream of strictly
    // negative samples reported max() == 0 (and strictly positive
    // ones min() == 0).
    MeanTracker t;
    t.sample(-5.0);
    EXPECT_EQ(t.min(), -5.0);
    EXPECT_EQ(t.max(), -5.0);
    t.sample(-2.0);
    t.sample(-9.0);
    EXPECT_EQ(t.min(), -9.0);
    EXPECT_EQ(t.max(), -2.0);

    MeanTracker p;
    p.sample(3.0);
    p.sample(8.0);
    EXPECT_EQ(p.min(), 3.0);
    EXPECT_EQ(p.max(), 8.0);

    p.reset();
    EXPECT_EQ(p.min(), 0.0);
    EXPECT_EQ(p.max(), 0.0);
    p.sample(-1.5);
    EXPECT_EQ(p.min(), -1.5);
    EXPECT_EQ(p.max(), -1.5);
}

TEST(Stats, TimelineAndHistogramExportJson)
{
    Timeline tl("hit_rate");
    tl.sample(0, 0.25);
    tl.sample(1000, 0.5);

    std::string error;
    const JsonValue v = parseJson(tl.toJson(), error);
    ASSERT_TRUE(v.isObject()) << error;
    EXPECT_EQ(v.get("name")->string, "hit_rate");
    const JsonValue *pts = v.get("points");
    ASSERT_NE(pts, nullptr);
    ASSERT_EQ(pts->array.size(), 2u);
    EXPECT_EQ(pts->array[1].get("t")->number, 1000.0);
    EXPECT_EQ(pts->array[1].get("v")->number, 0.5);

    Histogram h(10.0, 4);
    h.sample(5.0);
    h.sample(15.0);
    h.sample(99.0); // lands in the overflow bucket
    const JsonValue hv = parseJson(h.toJson(), error);
    ASSERT_TRUE(hv.isObject()) << error;
    EXPECT_EQ(hv.get("bucket_width")->number, 10.0);
    EXPECT_EQ(hv.get("samples")->number, 3.0);
    ASSERT_EQ(hv.get("counts")->array.size(), 5u); // 4 + overflow
    EXPECT_EQ(hv.get("counts")->array[0].number, 1.0);
    EXPECT_EQ(hv.get("counts")->array[1].number, 1.0);
    EXPECT_EQ(hv.get("counts")->array[4].number, 1.0);
}

TEST(MetricsRegistry, SnapshotsBuildSeries)
{
    std::uint64_t faults = 0;
    double level = 0.0;
    MetricsRegistry r;
    r.registerCounter("faults", &faults);
    r.registerMetric("level", MetricKind::Gauge,
                     [&level] { return level; });

    ASSERT_TRUE(r.has("faults"));
    EXPECT_FALSE(r.has("nope"));
    EXPECT_EQ(r.value("faults"), 0.0);

    r.snapshot(100);
    faults = 7;
    level = 0.5;
    r.snapshot(200);
    EXPECT_EQ(r.snapshots(), 2u);
    EXPECT_EQ(r.value("faults"), 7.0);

    const std::string csv = r.toCsv();
    EXPECT_NE(csv.find("cycle,faults,level"), std::string::npos) << csv;
    EXPECT_NE(csv.find("200,7,0.5"), std::string::npos) << csv;

    std::string error;
    const JsonValue v = parseJson(r.toJson(), error);
    ASSERT_TRUE(v.isObject()) << error;
    const JsonValue *metrics = v.get("metrics");
    ASSERT_NE(metrics, nullptr);
    ASSERT_EQ(metrics->array.size(), 2u);
    EXPECT_EQ(metrics->array[0].get("name")->string, "faults");
    EXPECT_EQ(
        metrics->array[0].get("points")->array[1].get("v")->number,
        7.0);
}

namespace
{

/** Small fault-heavy ChameleonOpt run with an in-memory sink. */
SystemConfig
tracedFaultConfig()
{
    BenchOptions opts;
    opts.scale = 512;
    SystemConfig cfg = makeSystemConfig(Design::ChameleonOpt, opts);
    cfg.numCores = 4;
    cfg.faults.enabled = true;
    cfg.faults.seed = 7;
    cfg.faults.transientFlipRate = 1e-3;
    cfg.faults.doubleFlipFraction = 0.02;
    cfg.faults.stuckSegmentFraction = 1e-2;
    cfg.faults.srrtCorruptionRate = 1e-4;
    cfg.faults.srrtUncorrectableFraction = 0.05;
    cfg.faults.spikeRate = 0.25;
    cfg.faults.spikeWindowCycles = 2'000;
    cfg.faults.retireThreshold = 2;
    cfg.obs.forceTrace = true;
    cfg.obs.metricsIntervalCycles = 50'000;
    return cfg;
}

AppProfile
tracedApp()
{
    AppProfile p;
    p.name = "traceapp";
    p.llcMpki = 25.0;
    p.footprintBytes = 18_GiB / 512;
    p.hotFraction = 0.05;
    p.hotProbability = 0.9;
    p.seqRunBlocks = 16.0;
    p.writeFraction = 0.3;
    return p;
}

} // namespace

TEST(SystemTrace, FaultRunExportsFullStoryWithMonotonicTimestamps)
{
    System sys(tracedFaultConfig());
    sys.loadRateWorkload(tracedApp());
    const RunResult res = sys.run(40'000, 20'000);

    ASSERT_NE(sys.traceSink(), nullptr);
    ParsedTrace parsed;
    std::string error;
    ASSERT_TRUE(
        loadChromeTrace(sys.traceSink()->toChromeJson(), parsed, error))
        << error;
    ASSERT_FALSE(parsed.events.empty());

    std::set<std::string> names;
    double prev_ts = 0.0;
    for (const auto &e : parsed.events) {
        EXPECT_GE(e.ts, prev_ts);
        prev_ts = e.ts;
        names.insert(e.name);
    }

    // The acceptance story: mode switches, swaps, ISA notifications
    // and the retirement pipeline must all appear in one trace.
    for (const char *want :
         {"mode_switch", "hot_swap", "isa_alloc", "retire_request",
          "segment_retired", "frame_retired", "isa_retire",
          "ecc_corrected", "hit_rate"})
        EXPECT_TRUE(names.count(want)) << "missing event " << want;
    EXPECT_GT(res.retiredSegments, 0u);

    // Metric snapshots ran periodically and agree with RunResult
    // where the whole run is the measured region's superset.
    MetricsRegistry &reg = sys.metricsRegistry();
    EXPECT_GT(reg.snapshots(), 2u);
    EXPECT_EQ(static_cast<std::uint64_t>(reg.value("retired_segments")),
              res.retiredSegments);
    EXPECT_GE(reg.value("fault_flips_injected"), 1.0);
}

TEST(SystemTrace, TraceAndMetricsFilesAreWrittenAndLoadable)
{
    SystemConfig cfg = tracedFaultConfig();
    const std::string dir = testing::TempDir();
    cfg.obs.tracePath = dir + "/cham_trace.json";
    cfg.obs.metricsPath = dir + "/cham_metrics.json";

    System sys(cfg);
    sys.loadRateWorkload(tracedApp());
    sys.run(20'000, 5'000);

    ParsedTrace parsed;
    std::string error;
    ASSERT_TRUE(loadChromeTraceFile(cfg.obs.tracePath, parsed, error))
        << error;
    EXPECT_FALSE(parsed.events.empty());

    std::ifstream in(cfg.obs.metricsPath);
    ASSERT_TRUE(in.good());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const JsonValue v = parseJson(text, error);
    ASSERT_TRUE(v.isObject()) << error;
    ASSERT_NE(v.get("metrics"), nullptr);
    EXPECT_GE(v.get("metrics")->array.size(), 20u);

    std::remove(cfg.obs.tracePath.c_str());
    std::remove(cfg.obs.metricsPath.c_str());
}

TEST(SystemTrace, DisabledObservabilityAttachesNoSink)
{
    BenchOptions opts;
    opts.scale = 512;
    SystemConfig cfg = makeSystemConfig(Design::ChameleonOpt, opts);
    cfg.numCores = 2;
    System sys(cfg);
    EXPECT_EQ(sys.traceSink(), nullptr);
    // The registry still names every metric for end-of-run reads.
    EXPECT_TRUE(sys.metricsRegistry().has("hit_rate"));
    EXPECT_TRUE(sys.metricsRegistry().has("major_faults"));
}
