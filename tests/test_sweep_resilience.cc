/**
 * @file
 * Resilience tests for the sweep engine: bounded retry with backoff,
 * per-cell wall-clock timeouts (sequential over-budget marking and
 * parallel abandonment), and the checkpoint/resume round trip — a
 * resumed sweep re-uses completed cells and reproduces the --json
 * aggregate byte-for-byte.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "sim/experiment.hh"
#include "sim/sweep_runner.hh"

using namespace chameleon;

namespace
{

BenchOptions
tinyOpts(unsigned jobs)
{
    BenchOptions o;
    o.scale = 512;
    o.instrPerCore = 20'000;
    o.minRefsPerCore = 2'000;
    o.jobs = jobs;
    return o;
}

/** Deterministic synthetic result so checkpoints are comparable. */
RunResult
fakeResult(std::uint64_t i)
{
    RunResult r;
    r.ipcGeoMean = 0.5 + 0.001 * static_cast<double>(i);
    r.stackedHitRate = 0.25 * static_cast<double>(i % 4);
    r.swaps = 10 * i;
    r.fills = 3 * i;
    r.amal = 100.0 + static_cast<double>(i) / 3.0;
    r.instructions = 1000 + i;
    r.memRefs = 100 + i;
    r.retiredSegments = i % 3;
    r.retiredBytes = (i % 3) * 2048;
    r.eccCorrected = 7 * i;
    r.degradedCycles = i * 12345;
    r.ipcPerCore = {0.1 * static_cast<double>(i),
                    1.0 / (static_cast<double>(i) + 3.0)};
    return r;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

TEST(SweepResilience, RetriesTransientFailuresWithBackoff)
{
    for (unsigned jobs : {1u, 3u}) {
        BenchOptions opts = tinyOpts(jobs);
        opts.maxRetries = 3;
        SweepRunner runner(opts);
        auto flaky_calls = std::make_shared<std::atomic<int>>(0);
        runner.submit("d", "flaky", [flaky_calls]() -> RunResult {
            if (flaky_calls->fetch_add(1) < 2)
                throw std::runtime_error("transient");
            return fakeResult(1);
        });
        auto hopeless_calls = std::make_shared<std::atomic<int>>(0);
        runner.submit("d", "hopeless",
                      [hopeless_calls]() -> RunResult {
                          hopeless_calls->fetch_add(1);
                          throw std::runtime_error("permanent");
                      });
        const auto recs = runner.collect();
        ASSERT_EQ(recs.size(), 2u);
        EXPECT_EQ(recs[0].status, CellStatus::Ok) << "jobs=" << jobs;
        EXPECT_EQ(recs[0].attempts, 3u);
        EXPECT_EQ(flaky_calls->load(), 3);
        EXPECT_EQ(recs[1].status, CellStatus::Failed);
        EXPECT_EQ(recs[1].error, "permanent");
        EXPECT_EQ(recs[1].attempts, 1u + opts.maxRetries);
        EXPECT_EQ(hopeless_calls->load(),
                  1 + static_cast<int>(opts.maxRetries));
    }
}

TEST(SweepResilience, SequentialTimeoutMarksOverBudgetCells)
{
    BenchOptions opts = tinyOpts(1);
    opts.cellTimeoutSec = 0.01;
    SweepRunner runner(opts);
    runner.submit("d", "slow", [] {
        std::this_thread::sleep_for(std::chrono::milliseconds(60));
        return fakeResult(0);
    });
    runner.submit("d", "fast", [] { return fakeResult(1); });
    const auto recs = runner.collect();
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0].status, CellStatus::Timeout);
    EXPECT_EQ(recs[1].status, CellStatus::Ok);
}

TEST(SweepResilience, ParallelTimeoutAbandonsStuckCellPromptly)
{
    BenchOptions opts = tinyOpts(2);
    opts.cellTimeoutSec = 0.2;
    auto release = std::make_shared<std::atomic<bool>>(false);
    std::vector<SweepRecord> recs;
    {
        SweepRunner runner(opts);
        runner.submit("d", "stuck", [release] {
            // A hung simulator stand-in: spins until the test ends
            // (the runner cannot kill the thread, only abandon it).
            while (!release->load())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
            return fakeResult(0);
        });
        for (int i = 1; i <= 3; ++i)
            runner.submit("d", "ok" + std::to_string(i),
                          [i] { return fakeResult(i); });
        const auto t0 = std::chrono::steady_clock::now();
        recs = runner.collect();
        const double waited = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() -
                                  t0)
                                  .count();
        EXPECT_LT(waited, 3.0)
            << "collect() must not wait for the stuck thread";
        release->store(true); // let the worker drain before joining
    }
    ASSERT_EQ(recs.size(), 4u);
    EXPECT_EQ(recs[0].status, CellStatus::Timeout);
    EXPECT_GE(recs[0].wallSeconds, opts.cellTimeoutSec);
    for (int i = 1; i <= 3; ++i) {
        EXPECT_EQ(recs[i].status, CellStatus::Ok) << "cell " << i;
        EXPECT_EQ(recs[i].result.instructions, 1000u + i);
    }
}

TEST(SweepResilience, CheckpointRoundTripIsByteIdentical)
{
    const std::string ckpt = "/tmp/chameleon_ckpt_roundtrip.txt";
    const std::string json_a = "/tmp/chameleon_ckpt_a.json";
    const std::string json_b = "/tmp/chameleon_ckpt_b.json";
    std::remove(ckpt.c_str());

    BenchOptions opts = tinyOpts(2);
    opts.checkpointPath = ckpt;

    auto run_sweep = [&](const std::string &json,
                         std::atomic<int> *executions) {
        BenchOptions o = opts;
        o.jsonPath = json;
        SweepRunner runner(o);
        for (std::uint64_t i = 0; i < 6; ++i)
            runner.submit("design" + std::to_string(i % 2),
                          "app" + std::to_string(i),
                          [i, executions] {
                              if (executions)
                                  executions->fetch_add(1);
                              return fakeResult(i);
                          });
        const auto recs = runner.collect();
        return std::make_pair(recs, runner.resumedCells());
    };

    std::atomic<int> first_runs{0};
    const auto [recs_a, resumed_a] = run_sweep(json_a, &first_runs);
    EXPECT_EQ(first_runs.load(), 6);
    EXPECT_EQ(resumed_a, 0u);
    for (const auto &r : recs_a)
        EXPECT_EQ(r.status, CellStatus::Ok);

    // Second run of the same sweep: every cell resumes, nothing
    // executes, and the --json aggregate is byte-identical.
    std::atomic<int> second_runs{0};
    const auto [recs_b, resumed_b] = run_sweep(json_b, &second_runs);
    EXPECT_EQ(second_runs.load(), 0);
    EXPECT_EQ(resumed_b, 6u);
    for (const auto &r : recs_b)
        EXPECT_TRUE(r.fromCheckpoint);
    EXPECT_EQ(slurp(json_a), slurp(json_b));

    std::remove(ckpt.c_str());
    std::remove(json_a.c_str());
    std::remove(json_b.c_str());
}

TEST(SweepResilience, InterruptedCheckpointResumesCompletedCells)
{
    const std::string ckpt = "/tmp/chameleon_ckpt_partial.txt";
    std::remove(ckpt.c_str());
    BenchOptions opts = tinyOpts(1);
    opts.checkpointPath = ckpt;

    {
        SweepRunner runner(opts);
        for (std::uint64_t i = 0; i < 4; ++i)
            runner.submit("d", "app" + std::to_string(i),
                          [i] { return fakeResult(i); });
        runner.collect();
    }

    // Simulate a kill mid-write: keep the header + the first two
    // cells, then leave a truncated third line.
    std::ifstream in(ckpt);
    std::string line, kept;
    for (int i = 0; i < 3 && std::getline(in, line); ++i)
        kept += line + "\n";
    in.close();
    std::ofstream out(ckpt, std::ios::trunc);
    out << kept << "cell 2 d app2 0x1."; // interrupted entry
    out.close();

    std::atomic<int> reruns{0};
    SweepRunner runner(opts);
    for (std::uint64_t i = 0; i < 4; ++i)
        runner.submit("d", "app" + std::to_string(i), [i, &reruns] {
            reruns.fetch_add(1);
            return fakeResult(i);
        });
    const auto recs = runner.collect();
    EXPECT_EQ(runner.resumedCells(), 2u);
    EXPECT_EQ(reruns.load(), 2) << "only the lost cells re-run";
    ASSERT_EQ(recs.size(), 4u);
    for (std::uint64_t i = 0; i < 4; ++i) {
        EXPECT_EQ(recs[i].status, CellStatus::Ok);
        EXPECT_EQ(recs[i].fromCheckpoint, i < 2);
        EXPECT_EQ(recs[i].result.instructions,
                  fakeResult(i).instructions);
        EXPECT_EQ(recs[i].result.ipcPerCore,
                  fakeResult(i).ipcPerCore);
    }
    std::remove(ckpt.c_str());
}

TEST(SweepResilience, MismatchedCheckpointHeaderStartsFresh)
{
    const std::string ckpt = "/tmp/chameleon_ckpt_mismatch.txt";
    std::remove(ckpt.c_str());
    BenchOptions opts = tinyOpts(1);
    opts.checkpointPath = ckpt;
    opts.seed = 1;
    {
        SweepRunner runner(opts);
        runner.submit("d", "app0", [] { return fakeResult(0); });
        runner.collect();
    }

    // A different seed is a different sweep: the stale checkpoint
    // must be ignored and rewritten, not resumed.
    opts.seed = 2;
    std::atomic<int> reruns{0};
    {
        SweepRunner runner(opts);
        runner.submit("d", "app0", [&reruns] {
            reruns.fetch_add(1);
            return fakeResult(0);
        });
        runner.collect();
        EXPECT_EQ(runner.resumedCells(), 0u);
        EXPECT_EQ(reruns.load(), 1);
    }
    EXPECT_NE(slurp(ckpt).find("seed=2"), std::string::npos)
        << "checkpoint must be rewritten for the new configuration";
    std::remove(ckpt.c_str());
}

TEST(SweepResilience, FailedCellsAreMarkedInJson)
{
    const std::string json = "/tmp/chameleon_failed_cells.json";
    BenchOptions opts = tinyOpts(2);
    opts.jsonPath = json;
    SweepRunner runner(opts);
    runner.submit("d", "good", [] { return fakeResult(0); });
    runner.submit("d", "bad", []() -> RunResult {
        throw std::runtime_error("boom \"quoted\"");
    });
    runner.collect();
    const std::string text = slurp(json);
    EXPECT_NE(text.find("\"status\": \"ok\""), std::string::npos);
    EXPECT_NE(text.find("\"status\": \"failed\""),
              std::string::npos);
    EXPECT_NE(text.find("\"error\": \"boom \\\"quoted\\\"\""),
              std::string::npos)
        << "error strings must be JSON-escaped";
    std::remove(json.c_str());
}
