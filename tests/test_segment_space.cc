/**
 * @file
 * Segment-space address arithmetic: group/slot decomposition must be
 * a bijection with homeAddr, device addresses must tile both pools,
 * and invalid geometries must be rejected. Includes property-style
 * randomized roundtrips over several capacity ratios.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/rng.hh"
#include "memorg/segment_space.hh"

using namespace chameleon;

TEST(SegmentSpace, BasicGeometry1to5)
{
    SegmentSpace s(4_MiB, 20_MiB, 2_KiB);
    EXPECT_EQ(s.numGroups(), 4_MiB / 2_KiB);
    EXPECT_EQ(s.slotsPerGroup(), 6u);
    EXPECT_EQ(s.osVisibleBytes(), 24_MiB);
}

TEST(SegmentSpace, StackedAddressesAreSlotZero)
{
    SegmentSpace s(4_MiB, 20_MiB, 2_KiB);
    EXPECT_EQ(s.slotOf(0), 0u);
    EXPECT_EQ(s.groupOf(0), 0u);
    EXPECT_EQ(s.slotOf(4_MiB - 1), 0u);
    EXPECT_EQ(s.groupOf(4_MiB - 1), s.numGroups() - 1);
    EXPECT_EQ(s.slotOf(4_MiB), 1u);
    EXPECT_EQ(s.groupOf(4_MiB), 0u);
}

TEST(SegmentSpace, OffchipSlotsStrideAcrossGroups)
{
    SegmentSpace s(4_MiB, 20_MiB, 2_KiB);
    // Consecutive off-chip segments belong to consecutive groups, so
    // OS allocation runs spread over many groups (Fig 6 discussion).
    EXPECT_EQ(s.groupOf(4_MiB), 0u);
    EXPECT_EQ(s.groupOf(4_MiB + 2_KiB), 1u);
    EXPECT_EQ(s.slotOf(4_MiB), s.slotOf(4_MiB + 2_KiB));
}

TEST(SegmentSpace, HomeAddrRoundtrip)
{
    SegmentSpace s(4_MiB, 20_MiB, 2_KiB);
    for (std::uint64_t g = 0; g < s.numGroups(); g += 37) {
        for (std::uint32_t slot = 0; slot < s.slotsPerGroup(); ++slot) {
            const Addr home = s.homeAddr(g, slot);
            EXPECT_EQ(s.groupOf(home), g);
            EXPECT_EQ(s.slotOf(home), slot);
        }
    }
}

TEST(SegmentSpace, DeviceAddressesTileBothPools)
{
    SegmentSpace s(1_MiB, 3_MiB, 2_KiB);
    std::unordered_set<Addr> stacked_devs, offchip_devs;
    for (std::uint64_t g = 0; g < s.numGroups(); ++g) {
        stacked_devs.insert(s.deviceAddr(g, 0));
        for (std::uint32_t k = 1; k < s.slotsPerGroup(); ++k)
            offchip_devs.insert(s.deviceAddr(g, k));
    }
    EXPECT_EQ(stacked_devs.size(), 1_MiB / 2_KiB);
    EXPECT_EQ(offchip_devs.size(), 3_MiB / 2_KiB);
    for (Addr d : stacked_devs)
        EXPECT_LT(d, 1_MiB);
    for (Addr d : offchip_devs)
        EXPECT_LT(d, 3_MiB);
}

TEST(SegmentSpace, InvalidGeometriesAreFatal)
{
    EXPECT_DEATH(SegmentSpace(4_MiB + 1, 20_MiB, 2_KiB),
                 "segment multiples");
    EXPECT_DEATH(SegmentSpace(4_MiB, 21_MiB + 2_KiB, 2_KiB),
                 "multiple of");
    // 1:8 exceeds the supported slot count.
    EXPECT_DEATH(SegmentSpace(1_MiB, 8_MiB, 2_KiB), "exceeds");
}

/** Randomized roundtrip property over the paper's three ratios. */
class SegmentSpaceRatio : public ::testing::TestWithParam<int>
{
  protected:
    SegmentSpace
    space() const
    {
        switch (GetParam()) {
          case 0:
            return SegmentSpace(4_MiB, 20_MiB, 2_KiB); // 1:5
          case 1:
            return SegmentSpace(6_MiB, 18_MiB, 2_KiB); // 1:3
          default:
            return SegmentSpace(3_MiB, 21_MiB, 2_KiB); // 1:7
        }
    }
};

TEST_P(SegmentSpaceRatio, RandomRoundtrip)
{
    const SegmentSpace s = space();
    Rng rng(41);
    for (int i = 0; i < 20000; ++i) {
        const Addr p = rng.below(s.osVisibleBytes());
        const std::uint64_t g = s.groupOf(p);
        const std::uint32_t slot = s.slotOf(p);
        ASSERT_LT(g, s.numGroups());
        ASSERT_LT(slot, s.slotsPerGroup());
        const Addr seg_base = p / s.segmentBytes() * s.segmentBytes();
        ASSERT_EQ(s.homeAddr(g, slot), seg_base);
    }
}

TEST_P(SegmentSpaceRatio, SlotCountMatchesRatio)
{
    const SegmentSpace s = space();
    const std::uint32_t expected[] = {6, 4, 8};
    EXPECT_EQ(s.slotsPerGroup(), expected[GetParam()]);
}

INSTANTIATE_TEST_SUITE_P(PaperRatios, SegmentSpaceRatio,
                         ::testing::Values(0, 1, 2));
