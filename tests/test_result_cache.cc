/**
 * @file
 * ResultCache suite (ctest -L serve): canonical cache-key semantics
 * (field-order/default insensitivity, seed and fault sensitivity),
 * bounded-LRU eviction at the byte budget, consistent-hash shard
 * invalidation, single-flight coalescing through a live server (16
 * concurrent identical jobs -> exactly one simulation), and a
 * differential check that a cached reply is byte-identical to a
 * fresh simulation for every design.
 */

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/client.hh"
#include "serve/result_cache.hh"
#include "serve/server.hh"

using namespace chameleon;
using namespace chameleon::serve;

namespace
{

SubmitRunRequest
baseRequest()
{
    SubmitRunRequest req;
    req.design = "chameleon-opt";
    req.app = "stream";
    req.seed = 42;
    req.scale = 512;
    req.instrPerCore = 10'000;
    req.minRefsPerCore = 500;
    return req;
}

CachedResult
sampleEntry(double ipc = 1.0)
{
    CachedResult e;
    e.state = JobState::Ok;
    e.result.ipcGeoMean = ipc;
    e.result.instructions = 1000;
    e.wallSeconds = 0.25;
    return e;
}

} // namespace

// ---------------------------------------------------------------
// Key canonicalization
// ---------------------------------------------------------------

TEST(ResultCacheKey, ServingFieldsDoNotAffectTheKey)
{
    const SubmitRunRequest a = baseRequest();
    SubmitRunRequest b = baseRequest();
    // deadlineMs and noCache steer serving, not simulation: same key.
    b.deadlineMs = 9999;
    b.noCache = true;
    EXPECT_EQ(cacheKey(a), cacheKey(b));
}

TEST(ResultCacheKey, DefaultedFieldsHashLikeExplicitOnes)
{
    const SubmitRunRequest a = baseRequest(); // fault fields defaulted
    SubmitRunRequest b = baseRequest();
    b.faultRate = 0.0; // explicit zeros == untouched defaults
    b.faultStuck = 0.0;
    b.faultSpikes = 0.0;
    b.oracle = false;
    EXPECT_EQ(cacheKey(a), cacheKey(b));
}

TEST(ResultCacheKey, NegativeZeroNormalizes)
{
    SubmitRunRequest a = baseRequest();
    SubmitRunRequest b = baseRequest();
    a.faultRate = 0.0;
    b.faultRate = -0.0;
    EXPECT_EQ(cacheKey(a), cacheKey(b));
}

TEST(ResultCacheKey, StringBoundariesCannotCollide)
{
    // Length-prefixed labels/values: shifting a character between
    // design and app must change the canonical encoding.
    SubmitRunRequest a = baseRequest();
    SubmitRunRequest b = baseRequest();
    a.design = "ab";
    a.app = "c";
    b.design = "a";
    b.app = "bc";
    EXPECT_NE(cacheKey(a), cacheKey(b));
}

TEST(ResultCacheKey, EveryResultAffectingFieldIsSensitive)
{
    const SubmitRunRequest base = baseRequest();
    const std::uint64_t k0 = cacheKey(base);

    auto mutated = [&](auto &&mutate) {
        SubmitRunRequest req = baseRequest();
        mutate(req);
        return cacheKey(req);
    };

    EXPECT_NE(k0, mutated([](auto &r) { r.design = "pom"; }));
    EXPECT_NE(k0, mutated([](auto &r) { r.app = "mcf"; }));
    EXPECT_NE(k0, mutated([](auto &r) { r.seed = 43; }));
    EXPECT_NE(k0, mutated([](auto &r) { r.scale = 256; }));
    EXPECT_NE(k0, mutated([](auto &r) { r.instrPerCore = 20'000; }));
    EXPECT_NE(k0, mutated([](auto &r) { r.minRefsPerCore = 501; }));
    EXPECT_NE(k0, mutated([](auto &r) { r.faultRate = 1e-4; }));
    EXPECT_NE(k0, mutated([](auto &r) { r.faultStuck = 1e-3; }));
    EXPECT_NE(k0, mutated([](auto &r) { r.faultSpikes = 0.05; }));
    EXPECT_NE(k0, mutated([](auto &r) { r.oracle = true; }));
}

TEST(ResultCacheKey, ShardIsStableAndInRange)
{
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
        SubmitRunRequest req = baseRequest();
        req.seed = seed;
        const std::uint64_t key = cacheKey(req);
        const std::uint32_t shard = cacheShard(key);
        EXPECT_LT(shard, kCacheShards);
        EXPECT_EQ(shard, cacheShard(key)); // pure function of the key
    }
}

// ---------------------------------------------------------------
// Bounded LRU storage
// ---------------------------------------------------------------

TEST(ResultCacheLru, HitMissAndRecencyOrder)
{
    ResultCache cache(1u << 20);
    ASSERT_TRUE(cache.enabled());

    CachedResult out;
    EXPECT_FALSE(cache.lookup(1, out));
    cache.insert(1, sampleEntry(1.0));
    cache.insert(2, sampleEntry(2.0));
    ASSERT_TRUE(cache.lookup(1, out));
    EXPECT_DOUBLE_EQ(out.result.ipcGeoMean, 1.0);

    const ResultCache::Stats st = cache.stats();
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.insertions, 2u);
    EXPECT_EQ(st.entries, 2u);
    EXPECT_GT(st.bytes, 0u);
}

TEST(ResultCacheLru, EvictsColdEntriesAtTheByteBudget)
{
    const std::size_t per_entry = cachedResultBytes(sampleEntry());
    // Room for three entries and change, never four.
    ResultCache cache(per_entry * 3 + per_entry / 2);

    cache.insert(1, sampleEntry(1.0));
    cache.insert(2, sampleEntry(2.0));
    cache.insert(3, sampleEntry(3.0));
    EXPECT_EQ(cache.stats().entries, 3u);
    EXPECT_EQ(cache.stats().evictions, 0u);

    // Touch 1 so 2 is the cold end, then overflow the budget.
    CachedResult out;
    ASSERT_TRUE(cache.lookup(1, out));
    cache.insert(4, sampleEntry(4.0));

    const ResultCache::Stats st = cache.stats();
    EXPECT_EQ(st.entries, 3u);
    EXPECT_EQ(st.evictions, 1u);
    EXPECT_LE(st.bytes, cache.byteBudget());
    EXPECT_FALSE(cache.lookup(2, out)) << "LRU entry must be gone";
    EXPECT_TRUE(cache.lookup(1, out));
    EXPECT_TRUE(cache.lookup(3, out));
    EXPECT_TRUE(cache.lookup(4, out));
}

TEST(ResultCacheLru, OversizedEntryIsRefused)
{
    ResultCache cache(8); // smaller than any encoded reply
    cache.insert(1, sampleEntry());
    const ResultCache::Stats st = cache.stats();
    EXPECT_EQ(st.entries, 0u);
    EXPECT_EQ(st.insertions, 0u);
    EXPECT_EQ(st.oversized, 1u);
    CachedResult out;
    EXPECT_FALSE(cache.lookup(1, out));
}

TEST(ResultCacheLru, ZeroBudgetDisablesEverything)
{
    ResultCache cache(0);
    EXPECT_FALSE(cache.enabled());
    cache.insert(1, sampleEntry());
    CachedResult out;
    EXPECT_FALSE(cache.lookup(1, out));
    EXPECT_EQ(cache.stats().entries, 0u);
    // Disabled lookups are not counted as misses either.
    EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(ResultCacheLru, InvalidateShardDropsExactlyThatShard)
{
    ResultCache cache(1u << 20);
    // Spread keys across shards until at least two shards own keys.
    std::vector<std::uint64_t> keys;
    for (std::uint64_t k = 1; keys.size() < 32; ++k) {
        cache.insert(k << 56 | k, sampleEntry());
        keys.push_back(k << 56 | k);
    }
    const std::uint32_t victim = cacheShard(keys[0]);
    std::size_t expected = 0;
    for (const std::uint64_t k : keys)
        if (cacheShard(k) == victim)
            ++expected;
    ASSERT_GT(expected, 0u);
    ASSERT_LT(expected, keys.size());

    EXPECT_EQ(cache.invalidateShard(victim), expected);
    CachedResult out;
    for (const std::uint64_t k : keys) {
        if (cacheShard(k) == victim)
            EXPECT_FALSE(cache.lookup(k, out));
        else
            EXPECT_TRUE(cache.lookup(k, out));
    }
}

TEST(ResultCacheLru, ClearCountsEvictions)
{
    ResultCache cache(1u << 20);
    cache.insert(1, sampleEntry());
    cache.insert(2, sampleEntry());
    cache.clear();
    const ResultCache::Stats st = cache.stats();
    EXPECT_EQ(st.entries, 0u);
    EXPECT_EQ(st.bytes, 0u);
    EXPECT_EQ(st.evictions, 2u);
}

// ---------------------------------------------------------------
// Single-flight + cache hits through a live server
// ---------------------------------------------------------------

TEST(ResultCacheServer, SixteenIdenticalJobsSimulateOnce)
{
    std::atomic<unsigned> simulations{0};
    ServerConfig cfg;
    cfg.workers = 4;
    cfg.runner = [&](const SubmitRunRequest &) {
        simulations.fetch_add(1);
        // Long enough that all 16 submissions land while the leader
        // is still in flight.
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        RunResult r;
        r.ipcGeoMean = 2.5;
        r.instructions = 4096;
        return r;
    };
    Server server(std::move(cfg));
    server.start();

    constexpr unsigned kClients = 16;
    std::atomic<unsigned> okCount{0};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kClients; ++t)
        threads.emplace_back([&] {
            ClientConfig ccfg;
            ccfg.port = server.port();
            Client c(ccfg);
            SubmitRunRequest req;
            req.design = "chameleon-opt";
            req.app = "stream";
            req.seed = 7;
            req.scale = 512;
            req.instrPerCore = 10'000;
            req.minRefsPerCore = 500;
            const SubmitRunReply sub = c.submitRun(req);
            const JobResultReply res = c.result(sub.jobId, 30'000);
            if (res.state == JobState::Ok &&
                res.instructions == 4096)
                okCount.fetch_add(1);
        });
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(okCount.load(), kClients);
    EXPECT_EQ(simulations.load(), 1u)
        << "single-flight must collapse identical jobs";

    const ResultCache::Stats cs = server.cacheStats();
    // Every non-leader was either coalesced behind the in-flight
    // leader or answered from the cache after it completed.
    EXPECT_EQ(cs.coalesced + cs.hits, kClients - 1);
    EXPECT_EQ(cs.insertions, 1u);

    const ServerStats st = server.stats();
    EXPECT_EQ(st.accepted, kClients);
    EXPECT_EQ(st.completedOk, kClients);
    EXPECT_EQ(st.lostJobs(), 0u);
    server.stop();
}

TEST(ResultCacheServer, NoCacheFlagForcesFreshSimulations)
{
    std::atomic<unsigned> simulations{0};
    ServerConfig cfg;
    cfg.workers = 2;
    cfg.runner = [&](const SubmitRunRequest &) {
        simulations.fetch_add(1);
        RunResult r;
        r.ipcGeoMean = 1.0;
        return r;
    };
    Server server(std::move(cfg));
    server.start();

    ClientConfig ccfg;
    ccfg.port = server.port();
    Client c(ccfg);
    SubmitRunRequest req;
    req.design = "chameleon-opt";
    req.app = "stream";
    req.scale = 512;
    req.instrPerCore = 10'000;
    req.minRefsPerCore = 500;
    req.noCache = true;

    for (int i = 0; i < 3; ++i) {
        const SubmitRunReply sub = c.submitRun(req);
        const JobResultReply res = c.result(sub.jobId, 30'000);
        EXPECT_EQ(res.state, JobState::Ok);
        EXPECT_EQ(res.cacheFlags, 0u);
    }
    EXPECT_EQ(simulations.load(), 3u);
    EXPECT_EQ(server.cacheStats().insertions, 0u);
    server.stop();
}

// ---------------------------------------------------------------
// Differential: cached replies are byte-identical to fresh ones
// ---------------------------------------------------------------

TEST(ResultCacheServer, CachedReplyMatchesFreshRunForEveryDesign)
{
    // Real simulator (no stub): submit each design twice. The first
    // reply is a fresh simulation, the second a cache hit; modulo
    // job identity (id, wall clock, cache flags) the encoded result
    // payloads must be byte-identical.
    ServerConfig cfg;
    cfg.workers = 2;
    cfg.bench.scale = 512;
    Server server(std::move(cfg));
    server.start();

    ClientConfig ccfg;
    ccfg.port = server.port();
    ccfg.ioTimeoutMs = 120'000;
    Client c(ccfg);

    const char *designs[] = {
        "flat-ddr",  "numa-flat", "alloy-cache", "pom",
        "chameleon", "chameleon-opt", "polymorphic",
    };
    for (const char *design : designs) {
        SubmitRunRequest req;
        req.design = design;
        req.app = "stream";
        req.seed = 11;
        req.scale = 512;
        req.instrPerCore = 5'000;
        req.minRefsPerCore = 250;

        const SubmitRunReply s1 = c.submitRun(req);
        JobResultReply fresh = c.result(s1.jobId, 120'000);
        ASSERT_EQ(fresh.state, JobState::Ok) << design;
        EXPECT_EQ(fresh.cacheFlags, 0u) << design;

        const SubmitRunReply s2 = c.submitRun(req);
        JobResultReply cached = c.result(s2.jobId, 120'000);
        ASSERT_EQ(cached.state, JobState::Ok) << design;
        EXPECT_EQ(cached.cacheFlags, kResultFromCache) << design;

        // Strip job identity, then require bytewise equality of the
        // encoded payloads — a field-by-field comparison could miss
        // a newly added result field; this cannot.
        fresh.jobId = cached.jobId = 0;
        fresh.wallSeconds = cached.wallSeconds = 0.0;
        fresh.cacheFlags = cached.cacheFlags = 0;
        fresh.traceIdHi = cached.traceIdHi = 0;
        fresh.traceIdLo = cached.traceIdLo = 0;
        EXPECT_EQ(encodeJobResultReply(fresh),
                  encodeJobResultReply(cached))
            << design;
    }

    const ResultCache::Stats cs = server.cacheStats();
    EXPECT_EQ(cs.hits, 7u);
    EXPECT_EQ(cs.insertions, 7u);
    server.stop();
    EXPECT_EQ(server.stats().lostJobs(), 0u);
}
