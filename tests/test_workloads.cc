/**
 * @file
 * Workload generator tests: Table II fidelity (MPKI, footprint),
 * locality structure, phase drift, and determinism — including a
 * parameterized sweep over the whole suite.
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include <cstdio>

#include "workloads/profile.hh"
#include "workloads/trace_stream.hh"
#include "workloads/stream_gen.hh"

using namespace chameleon;

TEST(Profile, SuiteHasFourteenApps)
{
    EXPECT_EQ(tableTwoSuite().size(), 14u);
}

TEST(Profile, FindByName)
{
    const auto suite = tableTwoSuite();
    EXPECT_EQ(findProfile(suite, "mcf").llcMpki, 59.80);
    EXPECT_DEATH((void)findProfile(suite, "nonesuch"), "unknown");
}

TEST(Profile, ScalingDividesFootprintOnly)
{
    const auto full = tableTwoSuite(1);
    const auto scaled = tableTwoSuite(64);
    for (std::size_t i = 0; i < full.size(); ++i) {
        EXPECT_EQ(scaled[i].footprintBytes,
                  full[i].footprintBytes / 64);
        EXPECT_EQ(scaled[i].llcMpki, full[i].llcMpki);
    }
}

TEST(Profile, TableTwoFootprints)
{
    const auto suite = tableTwoSuite(1);
    // Spot-check against Table II (GB values).
    EXPECT_NEAR(static_cast<double>(
                    findProfile(suite, "bwaves").footprintBytes) /
                    static_cast<double>(1_GiB),
                21.86, 0.01);
    EXPECT_NEAR(static_cast<double>(
                    findProfile(suite, "comd").footprintBytes) /
                    static_cast<double>(1_GiB),
                23.18, 0.01);
}

TEST(Profile, HighFootprintSubsetExists)
{
    const auto suite = tableTwoSuite();
    for (const auto &name : highFootprintNames())
        EXPECT_NO_FATAL_FAILURE((void)findProfile(suite, name));
}

TEST(StreamGen, Determinism)
{
    const auto suite = tableTwoSuite(64);
    const AppProfile &p = findProfile(suite, "lbm");
    SyntheticStream a(p, 16_MiB, 42), b(p, 16_MiB, 42);
    for (int i = 0; i < 5000; ++i) {
        const MemOp x = a.next();
        const MemOp y = b.next();
        ASSERT_EQ(x.vaddr, y.vaddr);
        ASSERT_EQ(x.gap, y.gap);
        ASSERT_EQ(static_cast<int>(x.type), static_cast<int>(y.type));
    }
}

TEST(StreamGen, SeedsDiffer)
{
    const auto suite = tableTwoSuite(64);
    const AppProfile &p = findProfile(suite, "lbm");
    SyntheticStream a(p, 16_MiB, 1), b(p, 16_MiB, 2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        if (a.next().vaddr == b.next().vaddr)
            ++same;
    EXPECT_LT(same, 100);
}

TEST(StreamGen, AddressesWithinFootprint)
{
    const auto suite = tableTwoSuite(64);
    const AppProfile &p = findProfile(suite, "mcf");
    const std::uint64_t fp = 8_MiB;
    SyntheticStream s(p, fp, 7);
    for (int i = 0; i < 20000; ++i)
        ASSERT_LT(s.next().vaddr, fp);
}

TEST(StreamGen, NoImmediateExactRepeats)
{
    const auto suite = tableTwoSuite(64);
    const AppProfile &p = findProfile(suite, "mcf");
    SyntheticStream s(p, 8_MiB, 7);
    Addr prev = invalidAddr;
    int repeats = 0;
    for (int i = 0; i < 20000; ++i) {
        const Addr a = s.next().vaddr;
        if (a == prev)
            ++repeats;
        prev = a;
    }
    // Post-LLC streams should essentially never re-miss the block
    // they just fetched.
    EXPECT_LT(repeats, 20);
}

TEST(StreamGen, HotSetConcentration)
{
    const auto suite = tableTwoSuite(64);
    const AppProfile &p = findProfile(suite, "cactusADM");
    const std::uint64_t fp = 16_MiB;
    SyntheticStream s(p, fp, 3);
    const std::uint64_t hot_bytes = static_cast<std::uint64_t>(
        p.hotFraction * static_cast<double>(fp));
    std::uint64_t hot_hits = 0;
    const int n = 50000;
    // Phase drift is small for cactusADM; measure over a short window
    // so the hot window stays near the origin.
    for (int i = 0; i < n; ++i)
        if (s.next().vaddr < hot_bytes + (1_MiB))
            ++hot_hits;
    EXPECT_GT(static_cast<double>(hot_hits) / n, 0.5);
}

TEST(StreamGen, PhaseRotationHappens)
{
    const auto suite = tableTwoSuite(64);
    AppProfile p = findProfile(suite, "cloverleaf");
    p.phaseInstructions = 10'000;
    SyntheticStream s(p, 8_MiB, 5);
    while (s.instructionsRetired() < 50'000)
        s.next();
    EXPECT_GE(s.phase(), 4u);
}

TEST(StreamGen, StationaryWithoutPhases)
{
    const auto suite = tableTwoSuite(64);
    AppProfile p = findProfile(suite, "lbm");
    p.phaseInstructions = 0;
    SyntheticStream s(p, 8_MiB, 5);
    while (s.instructionsRetired() < 100'000)
        s.next();
    EXPECT_EQ(s.phase(), 0u);
}

/** Parameterized fidelity sweep over the full Table II suite. */
class SuiteFidelity : public ::testing::TestWithParam<int>
{
};

TEST_P(SuiteFidelity, MpkiMatchesTableII)
{
    const auto suite = tableTwoSuite(64);
    const AppProfile &p = suite[static_cast<std::size_t>(GetParam())];
    SyntheticStream s(p, p.copyFootprint(), 11);
    const std::uint64_t refs = 40'000;
    for (std::uint64_t i = 0; i < refs; ++i)
        s.next();
    const double mpki = static_cast<double>(s.refsEmitted()) /
                        static_cast<double>(s.instructionsRetired()) *
                        1000.0;
    EXPECT_NEAR(mpki, p.llcMpki, p.llcMpki * 0.1)
        << p.name << ": measured MPKI off by more than 10%";
}

TEST_P(SuiteFidelity, WriteFractionMatches)
{
    const auto suite = tableTwoSuite(64);
    const AppProfile &p = suite[static_cast<std::size_t>(GetParam())];
    SyntheticStream s(p, p.copyFootprint(), 13);
    std::uint64_t writes = 0;
    const std::uint64_t refs = 40'000;
    for (std::uint64_t i = 0; i < refs; ++i)
        if (s.next().type == AccessType::Write)
            ++writes;
    EXPECT_NEAR(static_cast<double>(writes) / refs, p.writeFraction,
                0.02)
        << p.name;
}

TEST_P(SuiteFidelity, SequentialRunsPresent)
{
    const auto suite = tableTwoSuite(64);
    const AppProfile &p = suite[static_cast<std::size_t>(GetParam())];
    SyntheticStream s(p, p.copyFootprint(), 17);
    Addr prev = invalidAddr;
    std::uint64_t seq = 0;
    const std::uint64_t refs = 20'000;
    for (std::uint64_t i = 0; i < refs; ++i) {
        const Addr a = s.next().vaddr;
        if (prev != invalidAddr && a == prev + 64)
            ++seq;
        prev = a;
    }
    const double measured_run =
        1.0 / (1.0 - static_cast<double>(seq) / refs);
    EXPECT_NEAR(measured_run, p.seqRunBlocks,
                p.seqRunBlocks * 0.35)
        << p.name;
}

INSTANTIATE_TEST_SUITE_P(AllApps, SuiteFidelity,
                         ::testing::Range(0, 14));

TEST(TraceStream, ParsesAndReplays)
{
    const char *path = "/tmp/chameleon_test_trace.txt";
    std::FILE *f = std::fopen(path, "w");
    std::fputs("# demo trace\n"
               "R 0x1000 10\n"
               "W 4096 1\n"
               "r 0x20040\n",
               f);
    std::fclose(f);
    TraceStream t(path);
    EXPECT_EQ(t.size(), 3u);
    MemOp a = t.next();
    EXPECT_EQ(a.vaddr, 0x1000u);
    EXPECT_EQ(static_cast<int>(a.type),
              static_cast<int>(AccessType::Read));
    EXPECT_EQ(a.gap, 10u);
    MemOp b = t.next();
    EXPECT_EQ(b.vaddr, 4096u);
    EXPECT_EQ(static_cast<int>(b.type),
              static_cast<int>(AccessType::Write));
    MemOp c = t.next();
    EXPECT_EQ(c.vaddr, 0x20040u / 64 * 64);
    // Wraps around.
    EXPECT_EQ(t.next().vaddr, 0x1000u);
    EXPECT_EQ(t.loops(), 1u);
    // Footprint covers the highest page touched.
    EXPECT_GE(t.footprint(), 0x20040u);
    EXPECT_EQ(t.footprint() % 4096, 0u);
}

TEST(TraceStream, RejectsGarbage)
{
    const char *path = "/tmp/chameleon_bad_trace.txt";
    std::FILE *f = std::fopen(path, "w");
    std::fputs("X 0x1000\n", f);
    std::fclose(f);
    EXPECT_DEATH(TraceStream{path}, "expected R/W");
    EXPECT_DEATH(TraceStream{"/nonexistent/file"}, "cannot open");
}

TEST(TraceStream, InMemoryConstruction)
{
    std::vector<MemOp> ops(4);
    ops[0].vaddr = 0;
    ops[1].vaddr = 64;
    ops[2].vaddr = 128;
    ops[3].vaddr = 8_KiB;
    TraceStream t(std::move(ops));
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.footprint(), 12_KiB);
}
