/**
 * @file
 * End-to-end functional-integrity property tests.
 *
 * A shadow memory (plain map keyed by OS-visible address) is compared
 * against each organization's functional data layer while a random
 * storm of accesses and ISA-Alloc/ISA-Free events drives remaps,
 * swaps, cache fills, writebacks and clears. Any path that loses,
 * duplicates or leaks a block fails here. Parameterized over every
 * design and over the paper's three capacity ratios.
 */

#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>

#include "common/rng.hh"
#include "core/chameleon.hh"
#include "core/chameleon_opt.hh"
#include "core/polymorphic.hh"
#include "dram/dram_device.hh"
#include "memorg/alloy_cache.hh"
#include "memorg/flat_memory.hh"
#include "memorg/pom.hh"

using namespace chameleon;

namespace
{

enum class Org
{
    Flat,
    Alloy,
    Pom,
    Cham,
    ChamOpt,
    Poly,
};

struct Rig
{
    std::unique_ptr<DramDevice> stacked;
    std::unique_ptr<DramDevice> offchip;
    std::unique_ptr<MemOrganization> org;
    bool hasIsa = false;

    Rig(Org which, std::uint64_t s_bytes, std::uint64_t o_bytes)
    {
        DramTimings st = stackedDramConfig();
        st.capacity = s_bytes;
        DramTimings ot = offchipDramConfig();
        ot.capacity = o_bytes;
        stacked = std::make_unique<DramDevice>(st);
        offchip = std::make_unique<DramDevice>(ot);
        PomConfig pc;
        pc.swapThreshold = 2;
        switch (which) {
          case Org::Flat:
            org = std::make_unique<FlatMemory>(stacked.get(),
                                               offchip.get());
            break;
          case Org::Alloy:
            org = std::make_unique<AlloyCache>(stacked.get(),
                                               offchip.get());
            break;
          case Org::Pom:
            org = std::make_unique<PomMemory>(stacked.get(),
                                              offchip.get(), pc);
            break;
          case Org::Cham:
            org = std::make_unique<ChameleonMemory>(stacked.get(),
                                                    offchip.get(), pc);
            hasIsa = true;
            break;
          case Org::ChamOpt:
            org = std::make_unique<ChameleonOptMemory>(
                stacked.get(), offchip.get(), pc);
            hasIsa = true;
            break;
          case Org::Poly:
            org = std::make_unique<PolymorphicMemory>(stacked.get(),
                                                      offchip.get(),
                                                      pc);
            hasIsa = true;
            break;
        }
        org->enableFunctional(true);
    }
};

struct Param
{
    Org which;
    std::uint64_t stackedBytes;
    std::uint64_t offchipBytes;
    const char *label;
};

class IntegrityStorm : public ::testing::TestWithParam<Param>
{
};

} // namespace

TEST_P(IntegrityStorm, ShadowModelAgrees)
{
    const Param p = GetParam();
    Rig rig(p.which, p.stackedBytes, p.offchipBytes);
    const std::uint64_t os_bytes = rig.org->osVisibleBytes();
    const std::uint64_t segs = os_bytes / 2_KiB;

    Rng rng(1234);
    std::unordered_map<Addr, std::uint64_t> shadow;
    std::vector<bool> allocated(segs, !rig.hasIsa);
    Cycle t = 0;

    auto seg_of = [](Addr a) { return a / 2_KiB; };

    for (int i = 0; i < 60000; ++i) {
        const int op = static_cast<int>(rng.below(20));
        if (rig.hasIsa && op == 0) {
            const std::uint64_t s = rng.below(segs);
            if (!allocated[s]) {
                rig.org->isaAlloc(s * 2_KiB, ++t);
                allocated[s] = true;
            }
        } else if (rig.hasIsa && op == 1) {
            const std::uint64_t s = rng.below(segs);
            if (allocated[s]) {
                rig.org->isaFree(s * 2_KiB, ++t);
                allocated[s] = false;
                // Freed data is cleared by the hardware (§V-D2).
                for (Addr a = s * 2_KiB; a < (s + 1) * 2_KiB; a += 64)
                    shadow.erase(a);
            }
        } else {
            const Addr a = rng.below(os_bytes / 64) * 64;
            if (!allocated[seg_of(a)])
                continue; // the OS does not touch free memory
            const bool write = rng.chance(0.35);
            rig.org->access(a, write ? AccessType::Write
                                     : AccessType::Read, ++t);
            if (write) {
                const std::uint64_t v = rng.next();
                rig.org->functionalWrite(a, v);
                shadow[a] = v;
            } else {
                auto it = shadow.find(a);
                if (it != shadow.end()) {
                    const auto got = rig.org->functionalRead(a);
                    ASSERT_TRUE(got.has_value())
                        << p.label << ": block vanished at " << a
                        << " (step " << i << ")";
                    ASSERT_EQ(*got, it->second)
                        << p.label << ": block corrupted at " << a
                        << " (step " << i << ")";
                }
            }
        }
    }

    // Full final sweep: every shadow block must still be readable.
    for (const auto &[addr, value] : shadow) {
        const auto got = rig.org->functionalRead(addr);
        ASSERT_TRUE(got.has_value()) << p.label << " final sweep";
        ASSERT_EQ(*got, value) << p.label << " final sweep";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllDesignsAndRatios, IntegrityStorm,
    ::testing::Values(
        Param{Org::Flat, 64_KiB, 320_KiB, "flat-1to5"},
        Param{Org::Alloy, 64_KiB, 320_KiB, "alloy-1to5"},
        Param{Org::Pom, 64_KiB, 320_KiB, "pom-1to5"},
        Param{Org::Cham, 64_KiB, 320_KiB, "cham-1to5"},
        Param{Org::ChamOpt, 64_KiB, 320_KiB, "opt-1to5"},
        Param{Org::Poly, 64_KiB, 320_KiB, "poly-1to5"},
        Param{Org::Pom, 96_KiB, 288_KiB, "pom-1to3"},
        Param{Org::Cham, 96_KiB, 288_KiB, "cham-1to3"},
        Param{Org::ChamOpt, 96_KiB, 288_KiB, "opt-1to3"},
        Param{Org::Pom, 64_KiB, 448_KiB, "pom-1to7"},
        Param{Org::Cham, 64_KiB, 448_KiB, "cham-1to7"},
        Param{Org::ChamOpt, 64_KiB, 448_KiB, "opt-1to7"}),
    [](const ::testing::TestParamInfo<Param> &info) {
        std::string s = info.param.label;
        for (auto &c : s)
            if (c == '-')
                c = '_';
        return s;
    });
