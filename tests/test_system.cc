/**
 * @file
 * System-level integration tests: every design runs a rate-mode
 * workload end-to-end, determinism holds, warmup is excluded from
 * measurement, over-capacity footprints page-fault on cache designs
 * but not on PoM designs, and AutoNUMA improves on first-touch.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "memorg/pom.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"

using namespace chameleon;

namespace
{

BenchOptions
tinyOpts()
{
    BenchOptions o;
    o.scale = 512; // 8MiB + 40MiB machine: fast
    o.instrPerCore = 30'000;
    o.minRefsPerCore = 3'000;
    o.warmupFrac = 0.5;
    return o;
}

AppProfile
testApp(double footprint_frac_of_24 = 0.8)
{
    AppProfile p;
    p.name = "testapp";
    p.llcMpki = 25.0;
    p.footprintBytes = static_cast<std::uint64_t>(
        footprint_frac_of_24 * 24.0 * static_cast<double>(1_GiB)) /
        512;
    p.hotFraction = 0.05;
    p.hotProbability = 0.9;
    p.seqRunBlocks = 16.0;
    p.writeFraction = 0.3;
    return p;
}

} // namespace

class AllDesigns : public ::testing::TestWithParam<Design>
{
};

TEST_P(AllDesigns, RunsAndProducesSaneMetrics)
{
    const BenchOptions opts = tinyOpts();
    SystemConfig cfg = makeSystemConfig(GetParam(), opts);
    if (GetParam() == Design::NumaFlat)
        cfg.runAutoNuma = false;
    System sys(cfg);
    sys.loadRateWorkload(testApp());
    const RunResult r = sys.run(opts.instrPerCore,
                                opts.instrPerCore / 2);
    EXPECT_GT(r.ipcGeoMean, 0.0);
    EXPECT_LE(r.ipcGeoMean, 4.0);
    EXPECT_GE(r.stackedHitRate, 0.0);
    EXPECT_LE(r.stackedHitRate, 1.0);
    EXPECT_EQ(r.ipcPerCore.size(), 12u);
    EXPECT_GT(r.memRefs, 0u);
    if (GetParam() == Design::FlatDdr) {
        EXPECT_EQ(r.stackedHitRate, 0.0);
    }
}

TEST_P(AllDesigns, DeterministicAcrossRuns)
{
    const BenchOptions opts = tinyOpts();
    auto run_once = [&]() {
        System sys(makeSystemConfig(GetParam(), opts));
        sys.loadRateWorkload(testApp());
        return sys.run(opts.instrPerCore, opts.instrPerCore / 2);
    };
    const RunResult a = run_once();
    const RunResult b = run_once();
    EXPECT_EQ(a.ipcGeoMean, b.ipcGeoMean);
    EXPECT_EQ(a.swaps, b.swaps);
    EXPECT_EQ(a.fills, b.fills);
    EXPECT_EQ(a.memRefs, b.memRefs);
    EXPECT_EQ(a.majorFaults, b.majorFaults);
}

INSTANTIATE_TEST_SUITE_P(
    EveryDesign, AllDesigns,
    ::testing::Values(Design::FlatDdr, Design::NumaFlat, Design::Alloy,
                      Design::Pom, Design::Chameleon,
                      Design::ChameleonOpt, Design::Polymorphic),
    [](const ::testing::TestParamInfo<Design> &info) {
        std::string s = designLabel(info.param);
        for (auto &c : s)
            if (c == '-')
                c = '_';
        return s;
    });

TEST(System, CapacityLossCausesFaultsOnCacheDesigns)
{
    const BenchOptions opts = tinyOpts();
    // Footprint 22/24: fits PoM's 24, overflows Alloy's 20.
    const AppProfile app = testApp(22.0 / 24.0);

    System alloy(makeSystemConfig(Design::Alloy, opts));
    alloy.loadRateWorkload(app);
    const RunResult ra = alloy.run(opts.instrPerCore,
                                   opts.instrPerCore / 2);

    System pom(makeSystemConfig(Design::Pom, opts));
    pom.loadRateWorkload(app);
    const RunResult rp = pom.run(opts.instrPerCore,
                                 opts.instrPerCore / 2);

    EXPECT_GT(ra.majorFaults, 0u)
        << "cache design must page-fault on a 22GB-equivalent load";
    EXPECT_EQ(rp.majorFaults, 0u)
        << "PoM exposes the full 24GB equivalent";
    EXPECT_GT(rp.ipcGeoMean, ra.ipcGeoMean * 1.5);
}

TEST(System, ChameleonModeFractionsOrdered)
{
    const BenchOptions opts = tinyOpts();
    const AppProfile app = testApp(0.85);
    System basic(makeSystemConfig(Design::Chameleon, opts));
    basic.loadRateWorkload(app);
    const RunResult rb = basic.run(opts.instrPerCore, 0);
    System optsys(makeSystemConfig(Design::ChameleonOpt, opts));
    optsys.loadRateWorkload(app);
    const RunResult ro = optsys.run(opts.instrPerCore, 0);
    ASSERT_GE(rb.cacheModeFraction, 0.0);
    ASSERT_GE(ro.cacheModeFraction, 0.0);
    // Basic can only exploit free stacked segments (~15%); Opt any
    // free segment.
    EXPECT_GT(ro.cacheModeFraction, rb.cacheModeFraction);
    EXPECT_NEAR(rb.cacheModeFraction, 0.15, 0.08);
}

TEST(System, WarmupExcludedFromMeasurement)
{
    const BenchOptions opts = tinyOpts();
    System sys(makeSystemConfig(Design::ChameleonOpt, opts));
    sys.loadRateWorkload(testApp());
    const RunResult r = sys.run(10'000, 20'000);
    // Measured instruction count covers only the measured phase.
    EXPECT_NEAR(static_cast<double>(r.instructions), 12.0 * 10'000,
                12.0 * 10'000 * 0.02);
}

TEST(System, AutoNumaBeatsFirstTouch)
{
    BenchOptions opts = tinyOpts();
    opts.instrPerCore = 60'000;
    const AppProfile app = testApp(0.6);

    SystemConfig ft = makeSystemConfig(Design::NumaFlat, opts);
    System sys_ft(ft);
    sys_ft.loadRateWorkload(app);
    const RunResult r_ft = sys_ft.run(opts.instrPerCore, 0);

    SystemConfig an = makeSystemConfig(Design::NumaFlat, opts);
    an.runAutoNuma = true;
    an.autonuma.epochCycles = 50'000;
    an.autonuma.threshold = 0.9;
    System sys_an(an);
    sys_an.loadRateWorkload(app);
    const RunResult r_an = sys_an.run(opts.instrPerCore, 0);

    // First-touch fills the small stacked zone with whatever pages
    // allocate first; AutoNUMA migrates the hot ones in, so its hit
    // rate must be clearly higher (Fig 2a vs 2b).
    EXPECT_GT(r_an.stackedHitRate, r_ft.stackedHitRate);
    EXPECT_GT(sys_an.autonumaDaemon()->totalMigrations(), 0u);
}

TEST(System, AutoNumaRequiresNumaFlat)
{
    BenchOptions opts = tinyOpts();
    SystemConfig cfg = makeSystemConfig(Design::Pom, opts);
    cfg.runAutoNuma = true;
    EXPECT_DEATH(System{cfg}, "numa-flat");
}

TEST(System, RatioSensitivityModeFractions)
{
    // Fig 21: the cache-mode share of Chameleon-Opt grows with the
    // stacked:off-chip ratio (1:3 -> 1:7).
    BenchOptions o13 = tinyOpts();
    o13.stackedFullGiB = 6;
    o13.offchipFullGiB = 18;
    BenchOptions o17 = tinyOpts();
    o17.stackedFullGiB = 3;
    o17.offchipFullGiB = 21;

    auto frac = [](const BenchOptions &o) {
        System sys(makeSystemConfig(Design::ChameleonOpt, o));
        AppProfile app = testApp(0.85);
        sys.loadRateWorkload(app);
        const RunResult r = sys.run(o.instrPerCore, 0);
        return r.cacheModeFraction;
    };
    EXPECT_GT(frac(o17), frac(o13));
}

TEST(System, NoWorkloadIsFatal)
{
    const BenchOptions opts = tinyOpts();
    System sys(makeSystemConfig(Design::Pom, opts));
    EXPECT_DEATH(sys.run(1000), "no workload");
}

TEST(System, TraceWorkloadRuns)
{
    const char *path = "/tmp/chameleon_sys_trace.txt";
    std::FILE *f = std::fopen(path, "w");
    for (int i = 0; i < 256; ++i)
        std::fprintf(f, "%c 0x%x 20\n", i % 3 == 0 ? 'W' : 'R',
                     (i * 4096) % (1 << 20));
    std::fclose(f);

    const BenchOptions opts = tinyOpts();
    System sys(makeSystemConfig(Design::ChameleonOpt, opts));
    sys.loadTraceWorkload({path});
    const RunResult r = sys.run(5'000);
    EXPECT_GT(r.ipcGeoMean, 0.0);
    EXPECT_GT(r.memRefs, 0u);
}

TEST(System, SrtCacheCostsLatencyOnMisses)
{
    const BenchOptions opts = tinyOpts();
    SystemConfig ideal = makeSystemConfig(Design::Pom, opts);
    SystemConfig cached = makeSystemConfig(Design::Pom, opts);
    cached.pom.srtCacheEntries = 64; // tiny: frequent misses

    System a(ideal), b(cached);
    const AppProfile app = testApp(0.7);
    a.loadRateWorkload(app);
    b.loadRateWorkload(app);
    const RunResult ra = a.run(20'000);
    const RunResult rb = b.run(20'000);
    // Metadata fetches from stacked DRAM add latency.
    EXPECT_GT(rb.amal, ra.amal);
    auto *pom = dynamic_cast<PomMemory *>(&b.organization());
    ASSERT_NE(pom, nullptr);
    EXPECT_GT(pom->srtCacheMisses(), 0u);
    EXPECT_GT(pom->srtCacheHits(), 0u);
}
