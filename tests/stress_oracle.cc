/**
 * @file
 * Randomized stress driver for the shadow-memory differential oracle
 * and the remap-metadata invariant checker (src/verify).
 *
 * Three layers:
 *  1. OracleStorm — millions of mixed operations (reads, writes,
 *     ISA-Alloc, ISA-Free) against every organization with the
 *     ShadowOracle recording every store, checking every load, and
 *     re-running targeted invariant checks after each segment
 *     movement. Op count defaults to 1,000,000 per organization and
 *     scales with the CHAM_STRESS_OPS environment variable.
 *  2. System-level end-to-end runs of every design (including
 *     NumaFlat + AutoNUMA migrations) under SystemConfig::oracle.
 *  3. Mutation self-tests: deliberately corrupt SRRT state (a
 *     non-permutation entry, a flipped ABV bit, a coherent remap with
 *     no data movement) and prove the machinery detects each — the
 *     checker catches structural damage, the differential oracle
 *     catches structurally-plausible-but-wrong remaps.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "common/rng.hh"
#include "core/chameleon.hh"
#include "core/chameleon_opt.hh"
#include "core/polymorphic.hh"
#include "dram/dram_device.hh"
#include "memorg/alloy_cache.hh"
#include "memorg/flat_memory.hh"
#include "memorg/pom.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "verify/shadow_oracle.hh"

using namespace chameleon;

namespace
{

/** Mixed operations per organization (CHAM_STRESS_OPS to override). */
std::uint64_t
stressOps()
{
    if (const char *env = std::getenv("CHAM_STRESS_OPS"))
        return std::strtoull(env, nullptr, 0);
    return 1'000'000;
}

enum class Org
{
    Flat,
    Alloy,
    Pom,
    Cham,
    ChamOpt,
    Poly,
};

struct Rig
{
    std::unique_ptr<DramDevice> stacked;
    std::unique_ptr<DramDevice> offchip;
    std::unique_ptr<MemOrganization> org;
    bool hasIsa = false;

    Rig(Org which, std::uint64_t s_bytes, std::uint64_t o_bytes)
    {
        DramTimings st = stackedDramConfig();
        st.capacity = s_bytes;
        DramTimings ot = offchipDramConfig();
        ot.capacity = o_bytes;
        stacked = std::make_unique<DramDevice>(st);
        offchip = std::make_unique<DramDevice>(ot);
        PomConfig pc;
        pc.swapThreshold = 2;
        switch (which) {
          case Org::Flat:
            org = std::make_unique<FlatMemory>(stacked.get(),
                                               offchip.get());
            break;
          case Org::Alloy:
            org = std::make_unique<AlloyCache>(stacked.get(),
                                               offchip.get());
            break;
          case Org::Pom:
            org = std::make_unique<PomMemory>(stacked.get(),
                                              offchip.get(), pc);
            break;
          case Org::Cham:
            org = std::make_unique<ChameleonMemory>(stacked.get(),
                                                    offchip.get(), pc);
            hasIsa = true;
            break;
          case Org::ChamOpt:
            org = std::make_unique<ChameleonOptMemory>(
                stacked.get(), offchip.get(), pc);
            hasIsa = true;
            break;
          case Org::Poly:
            org = std::make_unique<PolymorphicMemory>(stacked.get(),
                                                      offchip.get(),
                                                      pc);
            hasIsa = true;
            break;
        }
        org->enableFunctional(true);
    }
};

struct Param
{
    Org which;
    std::uint64_t stackedBytes;
    std::uint64_t offchipBytes;
    const char *label;
};

class OracleStorm : public ::testing::TestWithParam<Param>
{
};

} // namespace

TEST_P(OracleStorm, MillionsOfMixedOpsStayClean)
{
    const Param p = GetParam();
    Rig rig(p.which, p.stackedBytes, p.offchipBytes);

    ShadowOracleConfig oc;
    oc.panicOnViolation = false; // collect, report via gtest
    ShadowOracle oracle(rig.org.get(), oc);
    OracleIsaShim shim(rig.org.get(), &oracle);
    oracle.reserve(rig.org->osVisibleBytes());

    const std::uint64_t os_bytes = rig.org->osVisibleBytes();
    const std::uint64_t seg = rig.org->isaSegmentBytes();
    const std::uint64_t segs = os_bytes / seg;
    const std::uint64_t ops = stressOps();

    Rng rng(p.stackedBytes + p.offchipBytes);
    std::vector<bool> allocated(segs, !rig.hasIsa);
    Cycle t = 0;

    for (std::uint64_t i = 0; i < ops; ++i) {
        const int op = static_cast<int>(rng.below(20));
        if (rig.hasIsa && op == 0) {
            const std::uint64_t s = rng.below(segs);
            if (!allocated[s]) {
                shim.isaAlloc(s * seg, ++t);
                allocated[s] = true;
            }
        } else if (rig.hasIsa && op == 1) {
            const std::uint64_t s = rng.below(segs);
            if (allocated[s]) {
                // Freed data is cleared by the hardware (§V-D2), so
                // the shadow stops constraining it first.
                oracle.invalidateRange(s * seg, seg);
                shim.isaFree(s * seg, ++t);
                allocated[s] = false;
            }
        } else {
            const Addr a = rng.below(os_bytes / 64) * 64;
            if (!allocated[a / seg])
                continue; // the OS does not touch free memory
            const bool write = rng.chance(0.35);
            rig.org->access(a, write ? AccessType::Write
                                     : AccessType::Read, ++t);
            if (write) {
                const std::uint64_t v = oracle.nextValue();
                rig.org->functionalWrite(a, v);
                oracle.recordStore(a, v);
            } else {
                oracle.checkLoad(a, rig.org->functionalRead(a));
            }
            oracle.onAccessDone(a);
        }
        if (i % 200'000 == 199'999)
            oracle.fullCheck(false); // no OS attached at this level
        if (!oracle.violationLog().empty())
            break; // fail fast with the op index in scope
    }
    oracle.finalCheck();

    for (const std::string &v : oracle.violationLog())
        ADD_FAILURE() << p.label << ": " << v;
    EXPECT_EQ(oracle.stats().violations, 0u);
    // Accesses aimed at OS-free segments are skipped (roughly half of
    // the address space in steady state), so well under `ops` land.
    EXPECT_GE(oracle.stats().loads + oracle.stats().stores, ops / 4)
        << "storm degenerated: too few memory operations";
    EXPECT_GT(oracle.stats().loadChecks, 0u);
    if (p.which != Org::Flat) {
        EXPECT_GT(oracle.invariantChecksRun(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllDesignsAndRatios, OracleStorm,
    ::testing::Values(
        Param{Org::Flat, 64_KiB, 320_KiB, "flat-1to5"},
        Param{Org::Alloy, 64_KiB, 320_KiB, "alloy-1to5"},
        Param{Org::Pom, 64_KiB, 320_KiB, "pom-1to5"},
        Param{Org::Cham, 64_KiB, 320_KiB, "cham-1to5"},
        Param{Org::ChamOpt, 64_KiB, 320_KiB, "opt-1to5"},
        Param{Org::Poly, 64_KiB, 320_KiB, "poly-1to5"},
        Param{Org::Cham, 64_KiB, 448_KiB, "cham-1to7"},
        Param{Org::ChamOpt, 96_KiB, 288_KiB, "opt-1to3"}),
    [](const ::testing::TestParamInfo<Param> &info) {
        std::string s = info.param.label;
        for (auto &c : s)
            if (c == '-')
                c = '_';
        return s;
    });

// ---------------------------------------------------------------------
// System-level end-to-end: SystemConfig::oracle wires the shadow over
// (process, virtual address) keys with page-fault invalidation and the
// OS free-list agreement check. The oracle panics on violation, so a
// passing run IS the assertion; the counters prove it actually ran.
// ---------------------------------------------------------------------

namespace
{

BenchOptions
oracleOpts()
{
    BenchOptions o;
    o.scale = 512; // 8MiB + 40MiB machine: fast
    o.instrPerCore = 30'000;
    o.minRefsPerCore = 3'000;
    o.warmupFrac = 0.5;
    o.oracle = true;
    return o;
}

AppProfile
stressApp()
{
    AppProfile p;
    p.name = "oracle-stress";
    p.llcMpki = 25.0;
    p.footprintBytes = static_cast<std::uint64_t>(
        0.8 * 24.0 * static_cast<double>(1_GiB)) / 512;
    p.hotFraction = 0.05;
    p.hotProbability = 0.9;
    p.seqRunBlocks = 16.0;
    p.writeFraction = 0.3;
    return p;
}

} // namespace

class OracleEndToEnd : public ::testing::TestWithParam<Design>
{
};

TEST_P(OracleEndToEnd, RateWorkloadRunsCleanUnderOracle)
{
    const BenchOptions opts = oracleOpts();
    const SystemConfig cfg = makeSystemConfig(GetParam(), opts);
    ASSERT_TRUE(cfg.oracle);
    const RunResult res = runRateWorkload(cfg, stressApp(), opts);
    EXPECT_EQ(res.oracleViolations, 0u);
    EXPECT_GT(res.oracleStores, 0u);
    EXPECT_GT(res.oracleLoadChecks, 0u);
    switch (GetParam()) {
      case Design::Alloy:
      case Design::Pom:
      case Design::Chameleon:
      case Design::ChameleonOpt:
      case Design::Polymorphic:
        EXPECT_GT(res.oracleInvariantChecks, 0u);
        break;
      default:
        break; // flat designs have no remap metadata to check
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, OracleEndToEnd,
    ::testing::Values(Design::FlatDdr, Design::NumaFlat, Design::Alloy,
                      Design::Pom, Design::Chameleon,
                      Design::ChameleonOpt, Design::Polymorphic),
    [](const ::testing::TestParamInfo<Design> &info) {
        std::string s = designLabel(info.param);
        for (auto &c : s)
            if (c == '-')
                c = '_';
        return s;
    });

TEST(OracleEndToEnd, AutoNumaMigrationsStayClean)
{
    // AutoNUMA migrates pages between nodes; the isaMigrate hook must
    // relocate functional data or every migrated page reads back
    // wrong. Uses an over-stacked footprint so migrations happen.
    const BenchOptions opts = oracleOpts();
    SystemConfig cfg = makeSystemConfig(Design::NumaFlat, opts);
    cfg.runAutoNuma = true;
    const RunResult res = runRateWorkload(cfg, stressApp(), opts);
    EXPECT_EQ(res.oracleViolations, 0u);
    EXPECT_GT(res.oracleStores, 0u);
    EXPECT_GT(res.oracleLoadChecks, 0u);
}

// ---------------------------------------------------------------------
// Mutation self-tests: inject metadata corruption and prove detection.
// ---------------------------------------------------------------------

namespace
{

/** PomMemory with the protected SRT exposed for tampering. */
struct TamperPom : PomMemory
{
    using PomMemory::PomMemory;
    using PomMemory::table;
};

/** ChameleonMemory with SRT and augment state exposed. */
struct TamperCham : ChameleonMemory
{
    using ChameleonMemory::ChameleonMemory;
    using PomMemory::table;
    using ChameleonMemory::aug;
};

/** Drive enough traffic that every segment holds known data. */
template <typename OrgT>
void
writeEverything(OrgT &org, ShadowOracle &oracle, Cycle &t)
{
    const std::uint64_t os_bytes = org.osVisibleBytes();
    for (Addr a = 0; a < os_bytes; a += 64) {
        org.access(a, AccessType::Write, ++t);
        const std::uint64_t v = oracle.nextValue();
        org.functionalWrite(a, v);
        oracle.recordStore(a, v);
    }
}

} // namespace

TEST(OracleMutation, DetectsNonPermutationSrtEntry)
{
    DramTimings st = stackedDramConfig();
    st.capacity = 64_KiB;
    DramTimings ot = offchipDramConfig();
    ot.capacity = 320_KiB;
    DramDevice stacked(st), offchip(ot);
    TamperPom pom(&stacked, &offchip);

    ShadowOracleConfig oc;
    oc.panicOnViolation = false;
    ShadowOracle oracle(&pom, oc);

    EXPECT_TRUE(oracle.invariants().checkAll(false).empty());

    // Clone one perm entry over another: two logical segments now
    // claim the same physical slot.
    pom.table[3].perm[1] = pom.table[3].perm[2];

    const auto found = oracle.invariants().checkAll(false);
    ASSERT_FALSE(found.empty());
    EXPECT_NE(found[0].find("not a permutation"), std::string::npos)
        << found[0];

    // The targeted check covering that group sees it too.
    const Addr in_group3 = 3 * pom.space().segmentBytes();
    EXPECT_FALSE(oracle.invariants().checkAt(in_group3).empty());
}

TEST(OracleMutation, DetectsFlippedAbvBit)
{
    DramTimings st = stackedDramConfig();
    st.capacity = 64_KiB;
    DramTimings ot = offchipDramConfig();
    ot.capacity = 320_KiB;
    DramDevice stacked(st), offchip(ot);
    TamperCham cham(&stacked, &offchip);
    cham.enableFunctional(true);

    ShadowOracleConfig oc;
    oc.panicOnViolation = false;
    ShadowOracle oracle(&cham, oc);
    OracleIsaShim shim(&cham, &oracle);

    // Allocate every segment: all groups in PoM mode, ABV all-ones.
    Cycle t = 0;
    const std::uint64_t seg = cham.isaSegmentBytes();
    for (Addr a = 0; a < cham.osVisibleBytes(); a += seg)
        shim.isaAlloc(a, ++t);
    EXPECT_TRUE(oracle.invariants().checkAll(false).empty());

    // Lose the stacked segment's allocation bit without a mode change
    // — the free-list and remap-table views now disagree.
    cham.aug[5].abv &= static_cast<std::uint8_t>(~1u);

    const auto found = oracle.invariants().checkAll(false);
    ASSERT_FALSE(found.empty());
    EXPECT_NE(found[0].find("disagrees"), std::string::npos)
        << found[0];
}

TEST(OracleMutation, DifferentialOracleCatchesCoherentSilentRemap)
{
    // The killer case for pure structural checking: swap two SRT
    // mappings *coherently* (perm and inv stay mutually inverse) but
    // move no data. Every invariant holds — only the differential
    // shadow notices the segments now read each other's bytes.
    DramTimings st = stackedDramConfig();
    st.capacity = 64_KiB;
    DramTimings ot = offchipDramConfig();
    ot.capacity = 320_KiB;
    DramDevice stacked(st), offchip(ot);
    TamperPom pom(&stacked, &offchip);
    pom.enableFunctional(true);

    ShadowOracleConfig oc;
    oc.panicOnViolation = false;
    ShadowOracle oracle(&pom, oc);
    oracle.reserve(pom.osVisibleBytes());

    Cycle t = 0;
    writeEverything(pom, oracle, t);

    SrtEntry &e = pom.table[7];
    std::swap(e.perm[1], e.perm[2]);
    e.inv[e.perm[1]] = 1;
    e.inv[e.perm[2]] = 2;

    // Structurally still a clean permutation...
    EXPECT_TRUE(oracle.invariants().checkAll(false).empty());

    // ...but reading the remapped segments yields swapped contents.
    const SegmentSpace &sp = pom.space();
    std::uint64_t before = oracle.stats().violations;
    for (std::uint32_t slot : {1u, 2u}) {
        const Addr base = sp.homeAddr(7, slot);
        for (Addr a = base; a < base + sp.segmentBytes(); a += 64)
            oracle.checkLoad(a, pom.functionalRead(a));
    }
    EXPECT_GT(oracle.stats().violations, before);
    ASSERT_FALSE(oracle.violationLog().empty());
    EXPECT_NE(oracle.violationLog()[0].find("shadow mismatch"),
              std::string::npos)
        << oracle.violationLog()[0];
}

TEST(OracleMutation, DetectsVanishedBlock)
{
    // A block the shadow knows about must stay readable; erasing it
    // from the functional layer (a lost writeback / clear-path bug)
    // must trip the "vanished" report.
    DramTimings st = stackedDramConfig();
    st.capacity = 64_KiB;
    DramTimings ot = offchipDramConfig();
    ot.capacity = 320_KiB;
    DramDevice stacked(st), offchip(ot);
    FlatMemory flat(&stacked, &offchip);
    flat.enableFunctional(true);

    ShadowOracleConfig oc;
    oc.panicOnViolation = false;
    ShadowOracle oracle(&flat, oc);

    oracle.recordStore(4096, 0xdead);
    // Never written through the organization: the functional layer
    // has no block there, so the read comes back absent.
    oracle.checkLoad(4096, flat.functionalRead(4096));
    ASSERT_EQ(oracle.violationLog().size(), 1u);
    EXPECT_NE(oracle.violationLog()[0].find("vanished"),
              std::string::npos);
    // One-shot reporting: the dead block stops re-triggering.
    oracle.checkLoad(4096, flat.functionalRead(4096));
    EXPECT_EQ(oracle.violationLog().size(), 1u);
}
