/**
 * @file
 * Golden-stats regression test: a fixed miniature sweep (every design
 * x one rate-mode app, fixed seed) is run through the SweepRunner
 * --json path and compared field-by-field against a checked-in
 * baseline. A silent behaviour change in the remap machinery, stream
 * generation, OS paging or stats plumbing shows up here as a drifted
 * metric long before anyone eyeballs a figure.
 *
 * Tolerances exist because geometric/zipf stream generation calls
 * libm (log1p, pow) whose last-ulp rounding differs across libc
 * builds, perturbing the reference streams slightly on other hosts.
 * On the machine that generated the baseline the match is exact.
 *
 * Regenerate after an intentional change:
 *   CHAM_GOLDEN_REGEN=1 ./tests/test_golden_stats
 * then commit tests/golden/baseline.json with the change itself.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "sim/sweep_runner.hh"

using namespace chameleon;

#ifndef CHAM_GOLDEN_DIR
#error "build must define CHAM_GOLDEN_DIR"
#endif

namespace
{

/** One parsed --json record (the fields worth pinning). */
struct GoldenRec
{
    std::string design;
    std::string app;
    double ipc = 0.0;
    double hitRate = 0.0;
    double amal = 0.0;
    std::uint64_t swaps = 0;
    std::uint64_t fills = 0;
    std::uint64_t instructions = 0;
    std::uint64_t memRefs = 0;
};

std::string
extractString(const std::string &line, const char *field)
{
    const std::string tag = std::string("\"") + field + "\": \"";
    const auto at = line.find(tag);
    if (at == std::string::npos)
        return "";
    const auto end = line.find('"', at + tag.size());
    return line.substr(at + tag.size(), end - at - tag.size());
}

double
extractNumber(const std::string &line, const char *field)
{
    const std::string tag = std::string("\"") + field + "\": ";
    const auto at = line.find(tag);
    if (at == std::string::npos)
        return -1.0;
    return std::strtod(line.c_str() + at + tag.size(), nullptr);
}

std::vector<GoldenRec>
parseRecords(const std::string &path)
{
    std::ifstream in(path);
    std::vector<GoldenRec> recs;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("\"design\"") == std::string::npos)
            continue;
        GoldenRec r;
        r.design = extractString(line, "design");
        r.app = extractString(line, "app");
        r.ipc = extractNumber(line, "ipc");
        r.hitRate = extractNumber(line, "hit_rate");
        r.amal = extractNumber(line, "amal");
        r.swaps =
            static_cast<std::uint64_t>(extractNumber(line, "swaps"));
        r.fills =
            static_cast<std::uint64_t>(extractNumber(line, "fills"));
        r.instructions = static_cast<std::uint64_t>(
            extractNumber(line, "instructions"));
        r.memRefs = static_cast<std::uint64_t>(
            extractNumber(line, "mem_refs"));
        recs.push_back(std::move(r));
    }
    return recs;
}

/** The pinned configuration. Changing ANY knob invalidates the golden
 *  file — regenerate and commit it alongside. */
BenchOptions
goldenOpts()
{
    BenchOptions o;
    o.scale = 512;
    o.instrPerCore = 30'000;
    o.minRefsPerCore = 3'000;
    o.warmupFrac = 0.5;
    o.seed = 1;
    o.jobs = 2;
    return o;
}

AppProfile
goldenApp()
{
    AppProfile p;
    p.name = "golden";
    p.llcMpki = 25.0;
    p.footprintBytes = static_cast<std::uint64_t>(
        0.8 * 24.0 * static_cast<double>(1_GiB)) / 512;
    p.hotFraction = 0.05;
    p.hotProbability = 0.9;
    p.seqRunBlocks = 16.0;
    p.writeFraction = 0.3;
    return p;
}

const std::vector<Design> goldenDesigns = {
    Design::FlatDdr,   Design::NumaFlat,     Design::Alloy,
    Design::Pom,       Design::Chameleon,    Design::ChameleonOpt,
    Design::Polymorphic,
};

/** Relative-or-absolute closeness for counters. */
::testing::AssertionResult
counterNear(const char *what, std::uint64_t got, std::uint64_t want)
{
    const double rel =
        want ? std::abs(static_cast<double>(got) -
                        static_cast<double>(want)) /
                   static_cast<double>(want)
             : 0.0;
    const std::uint64_t diff = got > want ? got - want : want - got;
    if (diff <= 5 || rel <= 0.05)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << what << " drifted: golden " << want << ", got " << got;
}

} // namespace

TEST(GoldenStats, SweepJsonMatchesBaseline)
{
    const std::string golden_path =
        std::string(CHAM_GOLDEN_DIR) + "/baseline.json";
    const std::string fresh_path = "golden_fresh.json";

    setQuiet(true);
    BenchOptions opts = goldenOpts();
    opts.jsonPath = fresh_path;
    const AppProfile app = goldenApp();

    SweepRunner runner(opts);
    for (Design d : goldenDesigns) {
        runner.submit(designLabel(d), app.name, [d, app, opts] {
            return runRateWorkload(makeSystemConfig(d, opts), app,
                                   opts);
        });
    }
    runner.collect(); // writes fresh_path

    if (std::getenv("CHAM_GOLDEN_REGEN")) {
        std::ifstream src(fresh_path, std::ios::binary);
        std::ofstream dst(golden_path, std::ios::binary);
        ASSERT_TRUE(src.good() && dst.good());
        dst << src.rdbuf();
        GTEST_SKIP() << "regenerated " << golden_path;
    }

    const std::vector<GoldenRec> want = parseRecords(golden_path);
    const std::vector<GoldenRec> got = parseRecords(fresh_path);
    ASSERT_FALSE(want.empty())
        << "missing " << golden_path
        << " — run with CHAM_GOLDEN_REGEN=1 to create it";
    ASSERT_EQ(got.size(), want.size());
    ASSERT_EQ(got.size(), goldenDesigns.size());

    for (std::size_t i = 0; i < want.size(); ++i) {
        SCOPED_TRACE(want[i].design);
        EXPECT_EQ(got[i].design, want[i].design);
        EXPECT_EQ(got[i].app, want[i].app);
        // Instruction targets are pure arithmetic: exact everywhere.
        EXPECT_EQ(got[i].instructions, want[i].instructions);
        EXPECT_NEAR(got[i].ipc, want[i].ipc,
                    0.03 * want[i].ipc + 1e-6);
        EXPECT_NEAR(got[i].hitRate, want[i].hitRate, 0.02);
        EXPECT_NEAR(got[i].amal, want[i].amal,
                    0.03 * want[i].amal + 0.5);
        EXPECT_TRUE(counterNear("swaps", got[i].swaps, want[i].swaps));
        EXPECT_TRUE(counterNear("fills", got[i].fills, want[i].fills));
        EXPECT_TRUE(counterNear("mem_refs", got[i].memRefs,
                                want[i].memRefs));
    }
    std::remove(fresh_path.c_str());
}
