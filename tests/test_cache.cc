/**
 * @file
 * SRAM cache and hierarchy tests: replacement behaviour, write-back
 * semantics, invalidation, and multi-level writeback propagation.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "common/rng.hh"

using namespace chameleon;

namespace
{

CacheConfig
smallCache(ReplPolicy policy = ReplPolicy::Lru)
{
    CacheConfig c;
    c.name = "small";
    c.sizeBytes = 4_KiB; // 64 lines
    c.associativity = 4; // 16 sets
    c.blockBytes = 64;
    c.policy = policy;
    return c;
}

} // namespace

TEST(Cache, HitAfterMiss)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.access(0x1000, AccessType::Read).hit);
    EXPECT_TRUE(c.access(0x1000, AccessType::Read).hit);
    EXPECT_TRUE(c.access(0x1020, AccessType::Read).hit) <<
        "same 64B block must hit regardless of offset";
}

TEST(Cache, LruEvictsOldest)
{
    Cache c(smallCache());
    // Fill one set (4 ways): same set index, different tags.
    const Addr stride = 16 * 64; // sets * block
    for (Addr i = 0; i < 4; ++i)
        c.access(i * stride, AccessType::Read);
    // Touch way 0 to make way 1 the LRU victim.
    c.access(0, AccessType::Read);
    c.access(4 * stride, AccessType::Read); // evicts 1*stride
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(1 * stride));
    EXPECT_TRUE(c.probe(2 * stride));
}

TEST(Cache, DirtyEvictionProducesWriteback)
{
    Cache c(smallCache());
    const Addr stride = 16 * 64;
    c.access(0, AccessType::Write); // dirty
    for (Addr i = 1; i <= 4; ++i) {
        auto r = c.access(i * stride, AccessType::Read);
        if (r.writeback) {
            EXPECT_EQ(r.writebackAddr, 0u);
            return;
        }
    }
    FAIL() << "dirty line never evicted";
}

TEST(Cache, CleanEvictionHasNoWriteback)
{
    Cache c(smallCache());
    const Addr stride = 16 * 64;
    for (Addr i = 0; i <= 4; ++i) {
        auto r = c.access(i * stride, AccessType::Read);
        EXPECT_FALSE(r.writeback);
    }
}

TEST(Cache, InvalidateReportsDirtiness)
{
    Cache c(smallCache());
    c.access(0x40, AccessType::Write);
    c.access(0x80, AccessType::Read);
    EXPECT_TRUE(c.invalidate(0x40));
    EXPECT_FALSE(c.invalidate(0x80));
    EXPECT_FALSE(c.invalidate(0xc0)); // absent
    EXPECT_FALSE(c.probe(0x40));
}

TEST(Cache, FlushCountsDirtyLines)
{
    Cache c(smallCache());
    c.access(0, AccessType::Write);
    c.access(64 * 16, AccessType::Write);
    c.access(64 * 32, AccessType::Read);
    EXPECT_EQ(c.flush(), 2u);
    EXPECT_FALSE(c.probe(0));
}

TEST(Cache, StatsTrackHitsMisses)
{
    Cache c(smallCache());
    c.access(0, AccessType::Read);
    c.access(0, AccessType::Read);
    c.access(64, AccessType::Read);
    EXPECT_EQ(c.stats().hits, 1u);
    EXPECT_EQ(c.stats().misses, 2u);
    EXPECT_NEAR(c.stats().missRate(), 2.0 / 3.0, 1e-12);
}

TEST(Cache, ProbeDoesNotPerturb)
{
    Cache c(smallCache());
    c.access(0, AccessType::Read);
    const auto hits = c.stats().hits;
    EXPECT_TRUE(c.probe(0));
    EXPECT_EQ(c.stats().hits, hits);
}

TEST(Cache, BadGeometryIsFatal)
{
    CacheConfig c = smallCache();
    c.blockBytes = 48;
    EXPECT_DEATH(Cache{c}, "power of two");
}

TEST(Cache, NonPowerOfTwoSetCountWorks)
{
    CacheConfig c;
    c.sizeBytes = 12_KiB; // 192 lines, 16-way -> 12 sets
    c.associativity = 16;
    Cache cache(c);
    EXPECT_EQ(cache.numSets(), 12u);
    cache.access(0, AccessType::Read);
    EXPECT_TRUE(cache.probe(0));
    EXPECT_FALSE(cache.probe(12 * 64));
}

/** All replacement policies must retain a small working set. */
class ReplPolicyTest : public ::testing::TestWithParam<ReplPolicy>
{
};

TEST_P(ReplPolicyTest, WorkingSetFitsAndHits)
{
    CacheConfig cfg = smallCache(GetParam());
    Cache c(cfg);
    // Working set = half the cache.
    const std::uint64_t lines = cfg.sizeBytes / cfg.blockBytes / 2;
    for (int pass = 0; pass < 4; ++pass)
        for (std::uint64_t i = 0; i < lines; ++i)
            c.access(i * 64, AccessType::Read);
    const double miss_rate = c.stats().missRate();
    EXPECT_LT(miss_rate, 0.35);
}

TEST_P(ReplPolicyTest, ThrashingMisses)
{
    CacheConfig cfg = smallCache(GetParam());
    Cache c(cfg);
    // Working set = 8x the cache, streaming: mostly misses.
    const std::uint64_t lines = cfg.sizeBytes / cfg.blockBytes * 8;
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t i = 0; i < lines; ++i)
            c.access(i * 64, AccessType::Read);
    EXPECT_GT(c.stats().missRate(), 0.8);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ReplPolicyTest,
                         ::testing::Values(ReplPolicy::Lru,
                                           ReplPolicy::Random,
                                           ReplPolicy::Srrip));

TEST(Hierarchy, MissesReachMemoryOnce)
{
    HierarchyConfig cfg;
    cfg.numCores = 2;
    CacheHierarchy h(cfg);
    auto first = h.access(0, 0x10000, AccessType::Read);
    EXPECT_TRUE(first.llcMiss);
    auto second = h.access(0, 0x10000, AccessType::Read);
    EXPECT_FALSE(second.llcMiss);
    EXPECT_LT(second.lookupLatency, first.lookupLatency);
}

TEST(Hierarchy, SharedL3AcrossCores)
{
    HierarchyConfig cfg;
    cfg.numCores = 2;
    CacheHierarchy h(cfg);
    h.access(0, 0x40000, AccessType::Read);
    // Second core misses its private L1/L2 but hits shared L3.
    auto r = h.access(1, 0x40000, AccessType::Read);
    EXPECT_FALSE(r.llcMiss);
}

TEST(Hierarchy, DirtyDataEventuallyWritesBackToMemory)
{
    HierarchyConfig cfg;
    cfg.numCores = 1;
    cfg.l1 = {"L1", 1_KiB, 2, 64, 1, ReplPolicy::Lru};
    cfg.l2 = {"L2", 2_KiB, 2, 64, 4, ReplPolicy::Lru};
    cfg.l3 = {"L3", 4_KiB, 2, 64, 8, ReplPolicy::Lru};
    CacheHierarchy h(cfg);
    h.access(0, 0, AccessType::Write);
    // Stream enough distinct lines to force the dirty block down and
    // out of every level.
    std::vector<Addr> wbs;
    for (Addr a = 64; a < 64_KiB; a += 64) {
        auto r = h.access(0, a, AccessType::Read);
        for (Addr wb : r.memWritebacks)
            wbs.push_back(wb);
    }
    bool found = false;
    for (Addr wb : wbs)
        if (wb == 0)
            found = true;
    EXPECT_TRUE(found);
}

TEST(Hierarchy, LlcMissCounter)
{
    HierarchyConfig cfg;
    cfg.numCores = 1;
    CacheHierarchy h(cfg);
    for (Addr a = 0; a < 64 * 100; a += 64)
        h.access(0, a, AccessType::Read);
    EXPECT_EQ(h.llcMisses(), 100u);
    h.resetStats();
    EXPECT_EQ(h.llcMisses(), 0u);
}

TEST(Hierarchy, TableIGeometry)
{
    HierarchyConfig cfg;
    CacheHierarchy h(cfg);
    EXPECT_EQ(h.l1Cache(0).config().sizeBytes, 32_KiB);
    EXPECT_EQ(h.l1Cache(0).config().associativity, 4u);
    EXPECT_EQ(h.l2Cache(0).config().sizeBytes, 256_KiB);
    EXPECT_EQ(h.l2Cache(0).config().associativity, 8u);
    EXPECT_EQ(h.l3Cache().config().sizeBytes, 12_MiB);
    EXPECT_EQ(h.l3Cache().config().associativity, 16u);
}
