/**
 * @file
 * DRAM device model tests: timing invariants, row-buffer behaviour,
 * bus serialization, refresh blackouts, bulk-transfer accounting, and
 * parameterized checks over both Table I device configurations.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dram/dram_device.hh"
#include "dram/timings.hh"

using namespace chameleon;

namespace
{

DramTimings
tinyConfig()
{
    DramTimings t = offchipDramConfig(1, 16_MiB);
    t.name = "tiny";
    return t;
}

} // namespace

TEST(DramTimings, PeakBandwidthTableI)
{
    const DramTimings stacked = stackedDramConfig();
    const DramTimings off = offchipDramConfig();
    // 1.6GHz * 2 (DDR) * 16B * 2ch = 102.4 GB/s
    EXPECT_NEAR(stacked.peakBandwidth(), 102.4e9, 1e8);
    // 0.8GHz * 2 * 8B * 2ch = 25.6 GB/s
    EXPECT_NEAR(off.peakBandwidth(), 25.6e9, 1e8);
}

TEST(DramTimings, BurstCycles)
{
    EXPECT_EQ(stackedDramConfig().burstCycles(), 2u);
    EXPECT_EQ(offchipDramConfig().burstCycles(), 4u);
    EXPECT_EQ(offchipDramConfig().burstCycles(128), 8u);
}

TEST(DramDevice, StackedFasterThanOffchipUnloaded)
{
    DramDevice stacked(stackedDramConfig(64));
    DramDevice off(offchipDramConfig(64));
    EXPECT_LT(stacked.idleHitLatency(), off.idleHitLatency());
}

TEST(DramDevice, CompletionAfterIssue)
{
    DramDevice dev(tinyConfig());
    Rng rng; // default seed
    for (int i = 0; i < 2000; ++i) {
        const Cycle when = static_cast<Cycle>(i) * 7;
        const Addr addr = (static_cast<Addr>(i) * 8191) % (16_MiB);
        const Cycle done =
            dev.access(addr / 64 * 64, AccessType::Read, when);
        ASSERT_GT(done, when);
    }
    (void)rng;
}

TEST(DramDevice, RowHitFasterThanConflict)
{
    DramDevice dev(tinyConfig());
    // Open a row, then hit it.
    const Cycle t0 = 1'000'000;
    dev.access(0, AccessType::Read, t0);
    const Cycle hit_done = dev.access(64, AccessType::Read, t0 + 500);
    const Cycle hit_lat = hit_done - (t0 + 500);

    // Conflict: same bank, different row. With 2 channels and a 2KiB
    // row, addresses 2*rowBytes*channels apart in the same bank-step
    // pattern conflict; compute a conflicting address by walking until
    // the stats show a conflict.
    const std::uint64_t conflicts_before = dev.stats().rowConflicts;
    Cycle conf_lat = 0;
    for (Addr cand = 4_KiB; cand < 8_MiB; cand += 4_KiB) {
        const Cycle start = t0 + 1'000'000;
        const Cycle done = dev.access(cand, AccessType::Read, start);
        if (dev.stats().rowConflicts > conflicts_before) {
            conf_lat = done - start;
            break;
        }
    }
    ASSERT_GT(conf_lat, 0u) << "no conflicting address found";
    EXPECT_LT(hit_lat, conf_lat);
}

TEST(DramDevice, SequentialStreamHitsRows)
{
    DramDevice dev(tinyConfig());
    Cycle t = 0;
    for (Addr a = 0; a < 1_MiB; a += 64)
        dev.access(a, AccessType::Read, t += 10);
    const auto &st = dev.stats();
    // A linear sweep should be strongly row-hit dominated.
    EXPECT_GT(st.rowHits, (st.rowMisses + st.rowConflicts) * 4);
}

TEST(DramDevice, RandomPatternConflicts)
{
    DramDevice dev(tinyConfig());
    Rng rng(17);
    Cycle t = 0;
    for (int i = 0; i < 20000; ++i)
        dev.access(rng.below(16_MiB / 64) * 64, AccessType::Read,
                   t += 3);
    const auto &st = dev.stats();
    EXPECT_GT(st.rowConflicts, st.rowHits);
}

TEST(DramDevice, BusSerializesBackToBack)
{
    DramDevice dev(tinyConfig());
    // Two same-channel same-row accesses issued at the same cycle
    // (64B blocks interleave across the 2 channels, so blocks 0 and 2
    // share channel 0): the second serializes on the data bus.
    const Cycle t0 = 40'000; // clear of the refresh blackout
    const Cycle d1 = dev.access(0, AccessType::Read, t0);
    const Cycle d2 = dev.access(128, AccessType::Read, t0);
    EXPECT_GT(d2, d1);
}

TEST(DramDevice, ThroughputBoundedByPeakBandwidth)
{
    const DramTimings cfg = tinyConfig();
    DramDevice dev(cfg);
    // Saturate: issue every access at cycle 0 and measure the time to
    // drain N blocks.
    const std::uint64_t blocks = 4096;
    Cycle last = 0;
    for (std::uint64_t i = 0; i < blocks; ++i)
        last = std::max(last,
                        dev.access(i * 64, AccessType::Read, 0));
    const double bytes = static_cast<double>(blocks) * 64.0;
    const double seconds =
        static_cast<double>(last) / (cpuFreqGhz * 1e9);
    const double gbps = bytes / seconds;
    EXPECT_LE(gbps, cfg.peakBandwidth() * 1.05);
    // And the model should achieve a decent fraction of peak when
    // streaming.
    EXPECT_GE(gbps, cfg.peakBandwidth() * 0.3);
}

TEST(DramDevice, RefreshBlackoutDelays)
{
    DramTimings cfg = tinyConfig();
    DramDevice dev(cfg);
    // An access landing exactly at the top of a refresh interval is
    // pushed past tRFC.
    const auto t_refi =
        static_cast<Cycle>(cfg.tRefiNs * cpuFreqGhz + 0.5);
    const auto t_rfc =
        static_cast<Cycle>(cfg.tRfcNs * cpuFreqGhz + 0.5);
    const Cycle when = t_refi; // start of second refresh window
    const Cycle done = dev.access(0, AccessType::Read, when);
    EXPECT_GE(done, when + t_rfc);
    EXPECT_GT(dev.stats().refreshStalls, 0u);
}

TEST(DramDevice, StatsCountReadsWritesBytes)
{
    DramDevice dev(tinyConfig());
    dev.access(0, AccessType::Read, 0);
    dev.access(64, AccessType::Write, 0);
    dev.access(128, AccessType::Read, 0);
    EXPECT_EQ(dev.stats().reads, 2u);
    EXPECT_EQ(dev.stats().writes, 1u);
    EXPECT_EQ(dev.stats().bytesTransferred, 192u);
    EXPECT_GT(dev.stats().avgReadLatency(), 0.0);
    dev.resetStats();
    EXPECT_EQ(dev.stats().reads, 0u);
}

TEST(DramDevice, BulkTransferAccountsAllBytes)
{
    DramDevice dev(tinyConfig());
    dev.bulkTransfer(0, 2048, AccessType::Read, 100);
    EXPECT_EQ(dev.stats().bytesTransferred, 2048u);
    EXPECT_EQ(dev.stats().reads, 32u);
}

TEST(DramDevice, BulkTransferCompletesAfterStart)
{
    DramDevice dev(tinyConfig());
    const Cycle done = dev.bulkTransfer(0, 2048, AccessType::Write,
                                        5000);
    EXPECT_GT(done, 5000u);
}

TEST(DramDevice, OutOfRangeAddressPanics)
{
    DramDevice dev(tinyConfig());
    EXPECT_DEATH(dev.access(16_MiB, AccessType::Read, 0), "beyond");
}

TEST(DramDevice, QueueDelayGrowsUnderLoad)
{
    DramDevice dev(tinyConfig());
    EXPECT_EQ(dev.estimatedQueueDelay(0), 0u);
    for (int i = 0; i < 64; ++i)
        dev.access(static_cast<Addr>(i) * 64, AccessType::Read, 0);
    EXPECT_GT(dev.estimatedQueueDelay(0), 0u);
}

/** Parameterized over both Table I device configurations. */
class DramConfigTest : public ::testing::TestWithParam<int>
{
  protected:
    DramTimings
    config() const
    {
        return GetParam() == 0 ? stackedDramConfig(64)
                               : offchipDramConfig(64);
    }
};

TEST_P(DramConfigTest, MonotoneUnderBackpressure)
{
    DramDevice dev(config());
    Cycle prev = 0;
    for (int i = 0; i < 1000; ++i) {
        const Cycle done = dev.access((i * 64) % dev.capacity(),
                                      AccessType::Read, 0);
        EXPECT_GE(done, prev > 64 ? prev - 64 : 0);
        prev = std::max(prev, done);
    }
}

TEST_P(DramConfigTest, EveryAddressMapsSomewhere)
{
    DramDevice dev(config());
    Rng rng(23);
    for (int i = 0; i < 5000; ++i) {
        const Addr a = rng.below(dev.capacity() / 64) * 64;
        EXPECT_GT(dev.access(a, AccessType::Read, 0), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(BothDevices, DramConfigTest,
                         ::testing::Values(0, 1));
