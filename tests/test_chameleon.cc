/**
 * @file
 * Basic Chameleon tests: every ISA-Alloc (Fig 8/9) and ISA-Free
 * (Fig 10/11) flowchart path, cache-mode hit/fill behaviour, the
 * security clearing rule (§V-D2), mode statistics (Fig 16), and
 * Polymorphic memory's no-hot-swap behaviour.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hh"
#include "core/chameleon.hh"
#include "core/polymorphic.hh"
#include "dram/dram_device.hh"

using namespace chameleon;

namespace
{

struct ChamRig
{
    std::unique_ptr<DramDevice> stacked;
    std::unique_ptr<DramDevice> offchip;
    std::unique_ptr<ChameleonMemory> cham;

    explicit ChamRig(PomConfig cfg = PomConfig(),
                     std::uint64_t s_bytes = 64_KiB,
                     std::uint64_t o_bytes = 320_KiB)
    {
        DramTimings st = stackedDramConfig();
        st.capacity = s_bytes;
        DramTimings ot = offchipDramConfig();
        ot.capacity = o_bytes;
        stacked = std::make_unique<DramDevice>(st);
        offchip = std::make_unique<DramDevice>(ot);
        cham = std::make_unique<ChameleonMemory>(stacked.get(),
                                                 offchip.get(), cfg);
        cham->enableFunctional(true);
    }

    /** Home address of (group, logical slot). */
    Addr
    home(std::uint64_t g, std::uint32_t slot) const
    {
        return cham->space().homeAddr(g, slot);
    }

    /** Allocate every segment of group @p g. */
    void
    allocGroup(std::uint64_t g)
    {
        for (std::uint32_t s = 0; s < cham->space().slotsPerGroup();
             ++s)
            cham->isaAlloc(home(g, s), 0);
    }
};

} // namespace

TEST(Chameleon, BootsInCacheMode)
{
    ChamRig rig;
    EXPECT_DOUBLE_EQ(rig.cham->cacheModeFraction(), 1.0);
    EXPECT_TRUE(rig.cham->checkInvariants());
}

TEST(Chameleon, AllocStackedSwitchesToPom)
{
    ChamRig rig;
    // Fig 8 flow 1-2-3-7-8: nothing cached, direct transition.
    rig.cham->isaAlloc(rig.home(0, 0), 0);
    EXPECT_EQ(static_cast<int>(rig.cham->groupMode(0)),
              static_cast<int>(GroupMode::Pom));
    EXPECT_EQ(rig.cham->chamStats().allocTransitions, 1u);
    EXPECT_TRUE(rig.cham->checkInvariants());
}

TEST(Chameleon, AllocOffchipKeepsMode)
{
    ChamRig rig;
    // Fig 8 flow 1-2-4-5.
    rig.cham->isaAlloc(rig.home(0, 1), 0);
    EXPECT_EQ(static_cast<int>(rig.cham->groupMode(0)),
              static_cast<int>(GroupMode::Cache));
    EXPECT_EQ(rig.cham->groupAbv(0), 0b10u);
    EXPECT_TRUE(rig.cham->checkInvariants());
}

TEST(Chameleon, FreeStackedSwitchesToCache)
{
    ChamRig rig;
    rig.cham->isaAlloc(rig.home(0, 0), 0);
    // Fig 10 flow 1-2-3-7-8: not remapped, direct transition.
    rig.cham->isaFree(rig.home(0, 0), 0);
    EXPECT_EQ(static_cast<int>(rig.cham->groupMode(0)),
              static_cast<int>(GroupMode::Cache));
    EXPECT_EQ(rig.cham->chamStats().freeTransitions, 1u);
    EXPECT_TRUE(rig.cham->checkInvariants());
}

TEST(Chameleon, FreeRemappedStackedSwapsBack)
{
    PomConfig cfg;
    cfg.swapThreshold = 2;
    cfg.burstCounter = true;
    ChamRig rig(cfg);
    rig.allocGroup(0);
    // Heat off-chip segment 1 until it swaps into the stacked slot.
    Cycle t = 0;
    while (rig.cham->stats().swaps == 0) {
        const Addr off = (t % 2) * 128;
        rig.cham->access(rig.home(0, 1) + off, AccessType::Read, ++t);
    }
    ASSERT_NE(rig.cham->entry(0).perm[0], 0u);
    const auto moves_before = rig.cham->stats().isaMoves;
    // Fig 10 flow 1-2-3-6-8 / Fig 11: the freed stacked segment is
    // proactively swapped back so the stacked slot becomes free.
    rig.cham->isaFree(rig.home(0, 0), ++t);
    EXPECT_GT(rig.cham->stats().isaMoves, moves_before);
    EXPECT_EQ(rig.cham->entry(0).perm[0], 0u);
    EXPECT_EQ(static_cast<int>(rig.cham->groupMode(0)),
              static_cast<int>(GroupMode::Cache));
    EXPECT_TRUE(rig.cham->checkInvariants());
}

TEST(Chameleon, CacheModeFillsAndHits)
{
    ChamRig rig;
    // Stacked segment free (cache mode), off-chip segment allocated.
    rig.cham->isaAlloc(rig.home(0, 1), 0);
    const Addr a = rig.home(0, 1);
    Cycle t = 0;
    // Re-referencing bursts trigger a fill; then hits are stacked.
    bool hit = false;
    for (int i = 0; i < 16 && !hit; ++i)
        hit = rig.cham->access(a + (i % 2) * 128, AccessType::Read,
                               ++t)
                  .stackedHit;
    EXPECT_TRUE(hit);
    EXPECT_GT(rig.cham->stats().fills, 0u);
    EXPECT_GT(rig.cham->chamStats().cacheHits, 0u);
    EXPECT_TRUE(rig.cham->checkInvariants());
}

TEST(Chameleon, AllocEvictsCachedSegmentWithWriteback)
{
    ChamRig rig;
    rig.cham->isaAlloc(rig.home(0, 1), 0);
    const Addr a = rig.home(0, 1);
    // Fill via read misses (write misses are write-around), then
    // dirty the cached copy with a write hit.
    Cycle t = 0;
    bool hit = false;
    for (int i = 0; i < 16 && !hit; ++i)
        hit = rig.cham->access(a + (i % 2) * 128, AccessType::Read,
                               ++t)
                  .stackedHit;
    ASSERT_TRUE(hit);
    ASSERT_TRUE(
        rig.cham->access(a, AccessType::Write, ++t).stackedHit);
    rig.cham->functionalWrite(a, 4242);
    // Fig 8 flow 1-2-3-6-8: ISA-Alloc for the stacked segment writes
    // the dirty cached copy back before the mode switch.
    rig.cham->isaAlloc(rig.home(0, 0), ++t);
    EXPECT_GT(rig.cham->stats().writebacks, 0u);
    EXPECT_EQ(static_cast<int>(rig.cham->groupMode(0)),
              static_cast<int>(GroupMode::Pom));
    EXPECT_EQ(rig.cham->functionalRead(a).value(), 4242u)
        << "dirty cache-mode data lost on mode transition";
    EXPECT_TRUE(rig.cham->checkInvariants());
}

TEST(Chameleon, FreeOffchipDropsCachedCopy)
{
    ChamRig rig;
    rig.cham->isaAlloc(rig.home(0, 1), 0);
    const Addr a = rig.home(0, 1);
    Cycle t = 0;
    bool hit = false;
    for (int i = 0; i < 16 && !hit; ++i)
        hit = rig.cham->access(a + (i % 2) * 128, AccessType::Read,
                               ++t)
                  .stackedHit;
    ASSERT_TRUE(hit);
    // Fig 10 flow 1-2-4-5 + dead-copy drop.
    rig.cham->isaFree(a, ++t);
    EXPECT_EQ(rig.cham->groupAbv(0), 0u);
    EXPECT_TRUE(rig.cham->checkInvariants());
}

TEST(Chameleon, SecurityClearOnFree)
{
    ChamRig rig;
    rig.cham->isaAlloc(rig.home(0, 1), 0);
    const Addr a = rig.home(0, 1);
    rig.cham->access(a, AccessType::Write, 1);
    rig.cham->functionalWrite(a, 999);
    rig.cham->isaFree(a, 2);
    // §V-D2: freed segments are cleared; a later owner must not see
    // the old bytes.
    EXPECT_FALSE(rig.cham->functionalRead(a).has_value());
    rig.cham->isaAlloc(a, 3);
    EXPECT_FALSE(rig.cham->functionalRead(a).has_value());
    EXPECT_GT(rig.cham->chamStats().segmentClears, 0u);
}

TEST(Chameleon, CacheModeFractionMatchesFreeStackedSegments)
{
    ChamRig rig;
    const std::uint64_t groups = rig.cham->space().numGroups();
    // Allocate the stacked segment of every even group.
    for (std::uint64_t g = 0; g < groups; g += 2)
        rig.cham->isaAlloc(rig.home(g, 0), 0);
    EXPECT_NEAR(rig.cham->cacheModeFraction(), 0.5, 1e-9);
}

TEST(Chameleon, PomModeGroupsBehaveLikePom)
{
    PomConfig cfg;
    cfg.swapThreshold = 2;
    cfg.burstCounter = true;
    ChamRig rig(cfg);
    rig.allocGroup(0);
    Cycle t = 0;
    bool swapped = false;
    for (int i = 0; i < 64 && !swapped; ++i) {
        rig.cham->access(rig.home(0, 1) + (i % 2) * 128,
                         AccessType::Read, ++t);
        swapped = rig.cham->stats().swaps > 0;
    }
    EXPECT_TRUE(swapped);
    EXPECT_TRUE(
        rig.cham->access(rig.home(0, 1), AccessType::Read, ++t)
            .stackedHit);
}

TEST(Chameleon, DoubleAllocAndFreeAreSurvivable)
{
    ChamRig rig;
    setQuiet(true);
    rig.cham->isaAlloc(rig.home(0, 0), 0);
    rig.cham->isaAlloc(rig.home(0, 0), 1); // warns, no corruption
    rig.cham->isaFree(rig.home(0, 0), 2);
    rig.cham->isaFree(rig.home(0, 0), 3); // warns, no corruption
    setQuiet(false);
    EXPECT_TRUE(rig.cham->checkInvariants());
}

TEST(Chameleon, InvariantStorm)
{
    PomConfig cfg;
    cfg.swapThreshold = 2;
    cfg.burstCounter = true;
    ChamRig rig(cfg);
    Rng rng(101);
    const std::uint64_t os_bytes = rig.cham->osVisibleBytes();
    const std::uint64_t segs = os_bytes / 2_KiB;
    std::vector<bool> allocated(segs, false);
    Cycle t = 0;
    for (int i = 0; i < 50000; ++i) {
        const int op = static_cast<int>(rng.below(10));
        if (op < 2) {
            const std::uint64_t s = rng.below(segs);
            if (!allocated[s]) {
                rig.cham->isaAlloc(s * 2_KiB, ++t);
                allocated[s] = true;
            }
        } else if (op < 4) {
            const std::uint64_t s = rng.below(segs);
            if (allocated[s]) {
                rig.cham->isaFree(s * 2_KiB, ++t);
                allocated[s] = false;
            }
        } else {
            const Addr a = rng.below(os_bytes / 64) * 64;
            rig.cham->access(a, rng.chance(0.3) ? AccessType::Write
                                                : AccessType::Read,
                             ++t);
        }
        if (i % 5000 == 0) {
            ASSERT_TRUE(rig.cham->checkInvariants())
                << "invariant broken at step " << i;
        }
    }
    EXPECT_TRUE(rig.cham->checkInvariants());
}

TEST(Polymorphic, NeverHotSwapsInPomMode)
{
    DramTimings st = stackedDramConfig();
    st.capacity = 64_KiB;
    DramTimings ot = offchipDramConfig();
    ot.capacity = 320_KiB;
    DramDevice stacked(st), offchip(ot);
    PolymorphicMemory poly(&stacked, &offchip);
    EXPECT_STREQ(poly.name(), "polymorphic");
    // Fully allocate group 0, then hammer an off-chip segment.
    for (std::uint32_t s = 0; s < poly.space().slotsPerGroup(); ++s)
        poly.isaAlloc(poly.space().homeAddr(0, s), 0);
    Cycle t = 0;
    for (int i = 0; i < 500; ++i)
        poly.access(poly.space().homeAddr(0, 1) + (i % 2) * 128,
                    AccessType::Read, ++t);
    EXPECT_EQ(poly.stats().swaps, 0u);
}

TEST(Polymorphic, StillCachesFreeStackedSpace)
{
    DramTimings st = stackedDramConfig();
    st.capacity = 64_KiB;
    DramTimings ot = offchipDramConfig();
    ot.capacity = 320_KiB;
    DramDevice stacked(st), offchip(ot);
    PolymorphicMemory poly(&stacked, &offchip);
    poly.isaAlloc(poly.space().homeAddr(0, 1), 0);
    Cycle t = 0;
    bool hit = false;
    for (int i = 0; i < 16 && !hit; ++i)
        hit = poly.access(poly.space().homeAddr(0, 1) + (i % 2) * 128,
                          AccessType::Read, ++t)
                  .stackedHit;
    EXPECT_TRUE(hit);
}
