/**
 * @file
 * Mini-OS tests: translation stability, demand paging and clock
 * eviction, fault accounting, ISA hook emission (Algorithms 1 and 2),
 * THP paths, migration, and teardown.
 */

#include <gtest/gtest.h>

#include <vector>

#include "os/mini_os.hh"

using namespace chameleon;

namespace
{

/** Records ISA notifications for inspection. */
class RecordingListener : public IsaListener
{
  public:
    explicit RecordingListener(std::uint64_t seg = 2048) : segBytes(seg)
    {
    }

    std::uint64_t isaSegmentBytes() const override { return segBytes; }

    void
    isaAlloc(Addr seg_base, Cycle) override
    {
        allocs.push_back(seg_base);
    }

    void
    isaFree(Addr seg_base, Cycle) override
    {
        frees.push_back(seg_base);
    }

    std::uint64_t segBytes;
    std::vector<Addr> allocs;
    std::vector<Addr> frees;
};

OsConfig
smallOs()
{
    OsConfig c;
    c.frames.stackedBytes = 2_MiB;
    c.frames.offchipBytes = 10_MiB;
    c.frames.policy = AllocPolicy::Uniform;
    c.frames.seed = 5;
    return c;
}

} // namespace

TEST(MiniOs, TranslationIsStable)
{
    MiniOs os(smallOs());
    const ProcId p = os.createProcess("a", 1_MiB);
    const Translation t1 = os.translate(p, 0x1234, AccessType::Read, 0);
    const Translation t2 = os.translate(p, 0x1234, AccessType::Read, 1);
    EXPECT_TRUE(t1.minorFault);
    EXPECT_FALSE(t2.minorFault);
    EXPECT_EQ(t1.phys, t2.phys);
    EXPECT_EQ(t1.phys % pageBytes, 0x234u);
}

TEST(MiniOs, DistinctPagesDistinctFrames)
{
    MiniOs os(smallOs());
    const ProcId p = os.createProcess("a", 1_MiB);
    const Addr f0 = os.translate(p, 0, AccessType::Read, 0).phys;
    const Addr f1 =
        os.translate(p, pageBytes, AccessType::Read, 0).phys;
    EXPECT_NE(f0 / pageBytes, f1 / pageBytes);
}

TEST(MiniOs, OutOfFootprintPanics)
{
    MiniOs os(smallOs());
    const ProcId p = os.createProcess("a", 1_MiB);
    EXPECT_DEATH(os.translate(p, 1_MiB, AccessType::Read, 0),
                 "beyond footprint");
}

TEST(MiniOs, PreAllocateMapsEverythingThatFits)
{
    MiniOs os(smallOs());
    const ProcId p = os.createProcess("a", 4_MiB);
    os.preAllocate(p);
    EXPECT_EQ(os.freeBytes(), 12_MiB - 4_MiB);
    // No faults when touching it afterwards.
    const Translation t =
        os.translate(p, 3_MiB, AccessType::Read, 0);
    EXPECT_EQ(t.stall, 0u);
}

TEST(MiniOs, OvercommitSwapsAndFaults)
{
    MiniOs os(smallOs()); // 12 MiB physical
    const ProcId p = os.createProcess("big", 16_MiB);
    os.preAllocate(p);
    EXPECT_EQ(os.freeBytes(), 0u);
    // Touch the pages that did not fit: major faults with the
    // Table I latency, evicting resident pages.
    Translation t =
        os.translate(p, 16_MiB - pageBytes, AccessType::Read, 0);
    EXPECT_TRUE(t.majorFault);
    EXPECT_EQ(t.stall, os.config().majorFaultLatency);
    EXPECT_GT(os.stats().swapOuts, 0u);
}

TEST(MiniOs, ClockEvictionPrefersUnreferenced)
{
    OsConfig cfg = smallOs();
    cfg.frames.stackedBytes = 2_MiB;
    cfg.frames.offchipBytes = 2_MiB;
    MiniOs os(cfg);
    const ProcId p = os.createProcess("a", 8_MiB);
    // A hot quarter-MiB is re-touched while the rest of the footprint
    // streams through: the clock's referenced bits must keep most of
    // the hot set resident.
    const Addr hot_bytes = 256_KiB;
    for (Addr a = 0; a < hot_bytes; a += pageBytes)
        os.translate(p, a, AccessType::Read, 0);
    Addr hot_cursor = 0;
    for (Addr a = hot_bytes; a < 8_MiB; a += pageBytes) {
        os.translate(p, a, AccessType::Read, 0);
        // Keep the hot set referenced.
        os.translate(p, hot_cursor, AccessType::Read, 0);
        hot_cursor = (hot_cursor + pageBytes) % hot_bytes;
    }
    std::uint64_t faults_on_hot = 0;
    for (Addr a = 0; a < hot_bytes; a += pageBytes)
        if (os.translate(p, a, AccessType::Read, 0).majorFault)
            ++faults_on_hot;
    EXPECT_LT(faults_on_hot, hot_bytes / pageBytes / 4);
}

TEST(MiniOs, IsaHooksPerSegment)
{
    RecordingListener listener(2048);
    OsConfig cfg = smallOs();
    MiniOs os(cfg, &listener);
    const ProcId p = os.createProcess("a", 64_KiB);
    os.preAllocate(p);
    // 16 pages x (4KiB / 2KiB) = 32 ISA-Allocs (Algorithm 1).
    EXPECT_EQ(listener.allocs.size(), 32u);
    for (Addr seg : listener.allocs)
        EXPECT_EQ(seg % 2048, 0u);
    os.destroyProcess(p);
    EXPECT_EQ(listener.frees.size(), 32u);
    EXPECT_EQ(os.stats().isaAllocs, 32u);
    EXPECT_EQ(os.stats().isaFrees, 32u);
}

TEST(MiniOs, IsaHooksRespectSegmentSize)
{
    RecordingListener listener(64);
    MiniOs os(smallOs(), &listener);
    const ProcId p = os.createProcess("a", 4_KiB);
    os.preAllocate(p);
    // One 4KiB page at 64B segments = 64 notifications (CAMEO-style).
    EXPECT_EQ(listener.allocs.size(), 64u);
}

TEST(MiniOs, IsaHooksCanBeDisabled)
{
    RecordingListener listener;
    OsConfig cfg = smallOs();
    cfg.emitIsaHooks = false;
    MiniOs os(cfg, &listener);
    const ProcId p = os.createProcess("a", 64_KiB);
    os.preAllocate(p);
    EXPECT_TRUE(listener.allocs.empty());
}

TEST(MiniOs, DestroyReleasesAllMemory)
{
    MiniOs os(smallOs());
    const ProcId p = os.createProcess("a", 4_MiB);
    os.preAllocate(p);
    os.destroyProcess(p);
    EXPECT_EQ(os.freeBytes(), 12_MiB);
    EXPECT_DEATH(os.translate(p, 0, AccessType::Read, 0),
                 "bad process");
}

TEST(MiniOs, ThpPreAllocateUsesHugePages)
{
    RecordingListener listener(2048);
    MiniOs os(smallOs(), &listener);
    const ProcId p = os.createProcess("thp", 4_MiB, true);
    os.preAllocate(p);
    EXPECT_GT(os.stats().thpAllocs, 0u);
    // 4MiB at 2KiB segments = 2048 notifications regardless of the
    // mapping granularity.
    EXPECT_EQ(listener.allocs.size(), 2048u);
    os.destroyProcess(p);
    EXPECT_EQ(os.freeBytes(), 12_MiB);
}

TEST(MiniOs, ThpSplitsUnderReclaim)
{
    OsConfig cfg = smallOs();
    cfg.frames.stackedBytes = 2_MiB;
    cfg.frames.offchipBytes = 2_MiB;
    MiniOs os(cfg);
    const ProcId thp = os.createProcess("thp", 4_MiB, true);
    os.preAllocate(thp);
    // A second process forces eviction of the THP-backed pages.
    const ProcId p2 = os.createProcess("b", 2_MiB);
    for (Addr a = 0; a < 2_MiB; a += pageBytes)
        os.translate(p2, a, AccessType::Read, 0);
    EXPECT_GT(os.stats().swapOuts, 0u);
    os.destroyProcess(thp);
    os.destroyProcess(p2);
    EXPECT_EQ(os.freeBytes(), 4_MiB);
}

TEST(MiniOs, MigrationMovesZone)
{
    OsConfig cfg = smallOs();
    cfg.frames.policy = AllocPolicy::SlowFirst;
    MiniOs os(cfg);
    const ProcId p = os.createProcess("a", 64_KiB);
    os.preAllocate(p);
    ASSERT_EQ(static_cast<int>(*os.pageNode(p, 0)),
              static_cast<int>(MemNode::OffChip));
    EXPECT_TRUE(os.migratePage(p, 0, MemNode::Stacked, 0));
    EXPECT_EQ(static_cast<int>(*os.pageNode(p, 0)),
              static_cast<int>(MemNode::Stacked));
    EXPECT_EQ(os.stats().migrations, 1u);
    // Idempotent when already there.
    EXPECT_TRUE(os.migratePage(p, 0, MemNode::Stacked, 0));
    EXPECT_EQ(os.stats().migrations, 1u);
}

TEST(MiniOs, MigrationFailsWithEnomem)
{
    OsConfig cfg = smallOs();
    cfg.frames.policy = AllocPolicy::FastFirst;
    MiniOs os(cfg);
    // Fill the stacked zone completely.
    const ProcId filler = os.createProcess("fill", 2_MiB);
    os.preAllocate(filler);
    const ProcId p = os.createProcess("b", 64_KiB);
    os.preAllocate(p);
    EXPECT_FALSE(os.migratePage(p, 0, MemNode::Stacked, 0));
    EXPECT_EQ(os.stats().migrationFailures, 1u);
}

TEST(MiniOs, PeekTranslateHasNoSideEffects)
{
    MiniOs os(smallOs());
    const ProcId p = os.createProcess("a", 64_KiB);
    EXPECT_FALSE(os.peekTranslate(p, 0).has_value());
    os.translate(p, 0, AccessType::Read, 0);
    EXPECT_TRUE(os.peekTranslate(p, 0).has_value());
}

TEST(MiniOs, DirtyTrackingOnWrites)
{
    MiniOs os(smallOs());
    const ProcId p = os.createProcess("a", 64_KiB);
    os.translate(p, 0, AccessType::Write, 0);
    // No externally visible assertion beyond surviving swap-out path;
    // exercise it by overcommitting another process.
    const ProcId big = os.createProcess("big", 12_MiB);
    os.preAllocate(big);
    for (Addr a = 0; a < 12_MiB; a += pageBytes)
        os.translate(big, a, AccessType::Read, 0);
    SUCCEED();
}
