/**
 * @file
 * Serving-daemon suite (ctest -L serve): wire-protocol round trips
 * and defensive decoding, then the Server over real loopback TCP —
 * concurrent clients, bounded-queue backpressure, deadline
 * enforcement with late-result discard, degraded fault results, and
 * the graceful-drain zero-lost invariant.
 *
 * Server tests inject a stub runner (ServerConfig::runner), so they
 * exercise the serving machinery — framing, queueing, threading,
 * state — without paying for real simulations; one end-to-end test
 * at the bottom runs the real simulator through the daemon.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "serve/client.hh"
#include "serve/net_util.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"

using namespace chameleon;
using namespace chameleon::serve;

namespace
{

SubmitRunRequest
sampleRequest()
{
    SubmitRunRequest req;
    req.design = "chameleon-opt";
    req.app = "stream";
    req.seed = 42;
    req.scale = 512;
    req.instrPerCore = 10'000;
    req.minRefsPerCore = 500;
    req.faultRate = 1e-4;
    req.faultStuck = 1e-3;
    req.faultSpikes = 0.05;
    req.oracle = true;
    req.deadlineMs = 1234;
    return req;
}

RunResult
stubResult()
{
    RunResult r;
    r.ipcGeoMean = 1.25;
    r.stackedHitRate = 0.875;
    r.amal = 123.5;
    r.cacheModeFraction = 0.5;
    r.cpuUtilization = 0.9;
    r.swaps = 11;
    r.fills = 22;
    r.majorFaults = 3;
    r.minorFaults = 400;
    r.instructions = 120'000;
    r.memRefs = 6'000;
    r.makespan = 987'654;
    return r;
}

/** Raw loopback TCP connection for malformed-bytes tests. */
int
rawConnect(std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    return fd;
}

/** Read frames until one decodes (or the peer closes / 5s pass). */
bool
readOneFrame(int fd, Frame &frame)
{
    std::vector<std::uint8_t> buf;
    std::uint8_t chunk[4096];
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
        std::size_t consumed = 0;
        if (decodeFrame(buf.data(), buf.size(), frame, consumed) ==
            FrameStatus::Ok)
            return true;
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            return false;
        buf.insert(buf.end(), chunk, chunk + n);
    }
    return false;
}

/** A server wired to a stub runner, started on an ephemeral port. */
struct StubServer
{
    explicit StubServer(
        std::function<RunResult(const SubmitRunRequest &)> runner,
        unsigned workers = 2, std::size_t queue_capacity = 64,
        std::uint32_t default_deadline_ms = 0,
        std::function<void(ServerConfig &)> tweak = {})
    {
        ServerConfig cfg;
        cfg.workers = workers;
        cfg.queueCapacity = queue_capacity;
        cfg.defaultDeadlineMs = default_deadline_ms;
        cfg.runner = std::move(runner);
        if (tweak)
            tweak(cfg);
        server = std::make_unique<Server>(std::move(cfg));
        server->start();
    }

    Client
    client() const
    {
        ClientConfig ccfg;
        ccfg.port = server->port();
        return Client(ccfg);
    }

    std::unique_ptr<Server> server;
};

} // namespace

// ---------------------------------------------------------------
// Protocol: encoding round trips
// ---------------------------------------------------------------

TEST(ServeProtocol, SubmitRunRoundTrip)
{
    const SubmitRunRequest in = sampleRequest();
    SubmitRunRequest out;
    ASSERT_TRUE(decodeSubmitRun(encodeSubmitRun(in), out));
    EXPECT_EQ(out.design, in.design);
    EXPECT_EQ(out.app, in.app);
    EXPECT_EQ(out.seed, in.seed);
    EXPECT_EQ(out.scale, in.scale);
    EXPECT_EQ(out.instrPerCore, in.instrPerCore);
    EXPECT_EQ(out.minRefsPerCore, in.minRefsPerCore);
    EXPECT_DOUBLE_EQ(out.faultRate, in.faultRate);
    EXPECT_DOUBLE_EQ(out.faultStuck, in.faultStuck);
    EXPECT_DOUBLE_EQ(out.faultSpikes, in.faultSpikes);
    EXPECT_EQ(out.oracle, in.oracle);
    EXPECT_EQ(out.deadlineMs, in.deadlineMs);
}

TEST(ServeProtocol, ResultReplyRoundTrip)
{
    JobResultReply in;
    in.jobId = 7;
    in.state = JobState::Degraded;
    in.error = "partial";
    in.wallSeconds = 1.5;
    fillResultReply(in, stubResult());
    in.retiredSegments = 9;
    in.eccUncorrectable = 2;

    JobResultReply out;
    ASSERT_TRUE(decodeJobResultReply(encodeJobResultReply(in), out));
    EXPECT_EQ(out.jobId, 7u);
    EXPECT_EQ(out.state, JobState::Degraded);
    EXPECT_EQ(out.error, "partial");
    EXPECT_DOUBLE_EQ(out.ipc, 1.25);
    EXPECT_DOUBLE_EQ(out.hitRate, 0.875);
    EXPECT_DOUBLE_EQ(out.amal, 123.5);
    EXPECT_EQ(out.makespan, 987'654u);
    EXPECT_EQ(out.retiredSegments, 9u);
    EXPECT_EQ(out.eccUncorrectable, 2u);
}

TEST(ServeProtocol, AllSmallRepliesRoundTrip)
{
    SubmitRunReply sub{99, 5};
    SubmitRunReply sub2;
    ASSERT_TRUE(decodeSubmitReply(encodeSubmitReply(sub), sub2));
    EXPECT_EQ(sub2.jobId, 99u);
    EXPECT_EQ(sub2.queueDepth, 5u);

    JobStatusReply st{3, JobState::Running, 0.25};
    JobStatusReply st2;
    ASSERT_TRUE(decodeJobStatusReply(encodeJobStatusReply(st), st2));
    EXPECT_EQ(st2.state, JobState::Running);
    EXPECT_DOUBLE_EQ(st2.wallSeconds, 0.25);

    HealthReply h;
    h.state = 1;
    h.uptimeMs = 12345;
    h.queuedJobs = 2;
    h.runningJobs = 3;
    h.acceptedJobs = 40;
    h.completedJobs = 35;
    HealthReply h2;
    ASSERT_TRUE(decodeHealthReply(encodeHealthReply(h), h2));
    EXPECT_EQ(h2.state, 1);
    EXPECT_EQ(h2.uptimeMs, 12345u);
    EXPECT_EQ(h2.completedJobs, 35u);

    MetricsReply m{"{\"a\":1}"};
    MetricsReply m2;
    ASSERT_TRUE(decodeMetricsReply(encodeMetricsReply(m), m2));
    EXPECT_EQ(m2.json, "{\"a\":1}");

    ErrorReply e{ErrCode::Busy, "queue full"};
    ErrorReply e2;
    ASSERT_TRUE(decodeError(encodeError(e), e2));
    EXPECT_EQ(e2.code, ErrCode::Busy);
    EXPECT_EQ(e2.message, "queue full");
}

// ---------------------------------------------------------------
// Protocol: defensive decoding
// ---------------------------------------------------------------

TEST(ServeProtocol, TruncatedFramesWantMoreBytes)
{
    const auto full =
        encodeFrame(MsgType::SubmitRun, encodeSubmitRun(sampleRequest()));
    Frame frame;
    std::size_t consumed = 0;
    // Every strict prefix is NeedMore, never Ok and never a crash.
    for (std::size_t n = 0; n < full.size(); ++n)
        ASSERT_EQ(decodeFrame(full.data(), n, frame, consumed),
                  FrameStatus::NeedMore)
            << "prefix length " << n;
    EXPECT_EQ(decodeFrame(full.data(), full.size(), frame, consumed),
              FrameStatus::Ok);
    EXPECT_EQ(consumed, full.size());
    EXPECT_EQ(frame.type, MsgType::SubmitRun);
}

TEST(ServeProtocol, BadMagicIsRejectedEvenPartial)
{
    std::vector<std::uint8_t> junk = {'G', 'E', 'T', ' ', '/', ' '};
    Frame frame;
    std::size_t consumed = 0;
    EXPECT_EQ(decodeFrame(junk.data(), junk.size(), frame, consumed),
              FrameStatus::BadMagic);
    // Even a 2-byte prefix that cannot be this protocol's magic is
    // rejected immediately rather than waiting for more bytes.
    EXPECT_EQ(decodeFrame(junk.data(), 2, frame, consumed),
              FrameStatus::BadMagic);
}

TEST(ServeProtocol, WrongVersionIsRejected)
{
    auto bytes = encodeFrame(MsgType::Health, {});
    bytes[4] = 0x7f; // version low byte
    Frame frame;
    std::size_t consumed = 0;
    EXPECT_EQ(decodeFrame(bytes.data(), bytes.size(), frame, consumed),
              FrameStatus::BadVersion);
}

TEST(ServeProtocol, OversizedDeclaredPayloadIsRejected)
{
    auto bytes = encodeFrame(MsgType::Health, {});
    const std::uint32_t huge = kMaxPayloadBytes + 1;
    std::memcpy(bytes.data() + 8, &huge, sizeof(huge));
    Frame frame;
    std::size_t consumed = 0;
    EXPECT_EQ(decodeFrame(bytes.data(), bytes.size(), frame, consumed),
              FrameStatus::Oversized);
}

TEST(ServeProtocol, MalformedPayloadsFailCleanly)
{
    const auto good = encodeSubmitRun(sampleRequest());
    SubmitRunRequest out;

    // Truncation at every byte boundary.
    for (std::size_t n = 0; n < good.size(); ++n) {
        const std::vector<std::uint8_t> cut(good.begin(),
                                            good.begin() +
                                                static_cast<std::ptrdiff_t>(n));
        EXPECT_FALSE(decodeSubmitRun(cut, out)) << "cut at " << n;
    }

    // Trailing garbage is rejected, not silently ignored.
    auto padded = good;
    padded.push_back(0xAB);
    EXPECT_FALSE(decodeSubmitRun(padded, out));

    // A string length pointing past the payload end.
    auto lied = good;
    lied[0] = 0xFF;
    lied[1] = 0xFF;
    EXPECT_FALSE(decodeSubmitRun(lied, out));
}

TEST(ServeProtocol, OverlongStringIsRejected)
{
    WireWriter w;
    w.u32(kMaxStringBytes + 1);
    for (std::uint32_t i = 0; i < kMaxStringBytes + 1; ++i)
        w.u8('x');
    const auto payload = w.take();
    WireReader r(payload);
    std::string s;
    EXPECT_FALSE(r.str(s));
    EXPECT_FALSE(r.ok());
}

TEST(ServeProtocol, Labels)
{
    EXPECT_STREQ(jobStateLabel(JobState::Degraded), "degraded");
    EXPECT_STREQ(jobStateLabel(JobState::TimedOut), "timeout");
    EXPECT_STREQ(errCodeLabel(ErrCode::Busy), "busy");
    EXPECT_TRUE(jobStateTerminal(JobState::Failed));
    EXPECT_FALSE(jobStateTerminal(JobState::Running));
}

// ---------------------------------------------------------------
// Server over loopback TCP
// ---------------------------------------------------------------

TEST(ServeServer, SubmitRunsAndReturnsResult)
{
    StubServer srv([](const SubmitRunRequest &) {
        return stubResult();
    });
    Client c = srv.client();

    const SubmitRunReply sub = c.submitRun(sampleRequest());
    EXPECT_GE(sub.jobId, 1u);

    const JobResultReply res = c.result(sub.jobId, 10'000);
    EXPECT_EQ(res.state, JobState::Ok);
    EXPECT_DOUBLE_EQ(res.ipc, 1.25);
    EXPECT_DOUBLE_EQ(res.hitRate, 0.875);
    EXPECT_EQ(res.fills, 22u);

    const ServerStats st = srv.server->stats();
    EXPECT_EQ(st.accepted, 1u);
    EXPECT_EQ(st.completedOk, 1u);
    EXPECT_EQ(st.lostJobs(), 0u);
}

TEST(ServeServer, FaultDegradedRunsAreFirstClassResults)
{
    StubServer srv([](const SubmitRunRequest &) {
        RunResult r = stubResult();
        r.retiredSegments = 5;
        r.retiredBytes = 5u * 4096;
        r.eccUncorrectable = 1;
        return r;
    });
    Client c = srv.client();

    const SubmitRunReply sub = c.submitRun(sampleRequest());
    const JobResultReply res = c.result(sub.jobId, 10'000);
    EXPECT_EQ(res.state, JobState::Degraded);
    EXPECT_EQ(res.retiredSegments, 5u);
    EXPECT_EQ(res.eccUncorrectable, 1u);
    // Statistics still valid alongside the degradation counters.
    EXPECT_DOUBLE_EQ(res.ipc, 1.25);
    EXPECT_EQ(srv.server->stats().completedDegraded, 1u);
}

TEST(ServeServer, ThrowingJobReportsFailed)
{
    StubServer srv([](const SubmitRunRequest &) -> RunResult {
        throw std::runtime_error("injected boom");
    });
    Client c = srv.client();
    const SubmitRunReply sub = c.submitRun(sampleRequest());
    const JobResultReply res = c.result(sub.jobId, 10'000);
    EXPECT_EQ(res.state, JobState::Failed);
    EXPECT_NE(res.error.find("injected boom"), std::string::npos);
    EXPECT_EQ(srv.server->stats().lostJobs(), 0u);
}

TEST(ServeServer, UnknownJobAndBadRequestsAreTypedErrors)
{
    StubServer srv([](const SubmitRunRequest &) {
        return stubResult();
    });
    Client c = srv.client();

    try {
        c.result(424242, 0);
        FAIL() << "expected UnknownJob";
    } catch (const ServeError &e) {
        EXPECT_EQ(e.kind(), ServeErrorKind::ServerError);
        EXPECT_EQ(e.code(), ErrCode::UnknownJob);
    }

    SubmitRunRequest bad = sampleRequest();
    bad.design = "warp-drive";
    try {
        c.submitRun(bad);
        FAIL() << "expected BadRequest";
    } catch (const ServeError &e) {
        EXPECT_EQ(e.code(), ErrCode::BadRequest);
    }

    bad = sampleRequest();
    bad.app = "no-such-app";
    EXPECT_THROW(c.submitRun(bad), ServeError);

    bad = sampleRequest();
    bad.faultRate = 2.5;
    EXPECT_THROW(c.submitRun(bad), ServeError);

    bad = sampleRequest();
    bad.scale = 0;
    EXPECT_THROW(c.submitRun(bad), ServeError);

    EXPECT_EQ(srv.server->stats().rejectedInvalid, 4u);
    EXPECT_EQ(srv.server->stats().accepted, 0u);
}

TEST(ServeServer, BoundedQueueAnswersBusy)
{
    std::mutex m;
    std::condition_variable cv;
    bool release = false;
    std::atomic<int> started{0};

    StubServer srv(
        [&](const SubmitRunRequest &) {
            started.fetch_add(1);
            std::unique_lock<std::mutex> lock(m);
            cv.wait(lock, [&] { return release; });
            return stubResult();
        },
        /*workers=*/1, /*queue_capacity=*/1);
    Client c = srv.client();

    // Distinct seeds: identical jobs would coalesce behind the
    // leader (single-flight) instead of occupying queue slots.
    SubmitRunRequest r1 = sampleRequest();
    SubmitRunRequest r2 = sampleRequest();
    SubmitRunRequest r3 = sampleRequest();
    r2.seed = 43;
    r3.seed = 44;

    // First job: picked up by the single worker (leaves the queue).
    const SubmitRunReply a = c.submitRun(r1);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(5);
    while (started.load() == 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(started.load(), 1);

    // Second job fills the queue; third must bounce with Busy.
    const SubmitRunReply b = c.submitRun(r2);
    bool busy = false;
    try {
        c.submitRun(r3);
    } catch (const ServeError &e) {
        busy = e.code() == ErrCode::Busy;
    }
    // Release the stub before asserting so a failure can't leave the
    // worker parked forever in the server destructor.
    {
        std::lock_guard<std::mutex> lock(m);
        release = true;
    }
    cv.notify_all();
    EXPECT_TRUE(busy) << "expected Busy";
    EXPECT_EQ(srv.server->stats().rejectedBusy, 1u);

    EXPECT_EQ(c.result(a.jobId, 10'000).state, JobState::Ok);
    EXPECT_EQ(c.result(b.jobId, 10'000).state, JobState::Ok);
    EXPECT_EQ(srv.server->stats().lostJobs(), 0u);
}

TEST(ServeServer, DeadlineExpiredJobReportsTimeout)
{
    std::atomic<bool> finished{false};
    StubServer srv(
        [&](const SubmitRunRequest &) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(600));
            finished.store(true);
            return stubResult();
        },
        /*workers=*/1);
    Client c = srv.client();

    SubmitRunRequest req = sampleRequest();
    req.deadlineMs = 50;
    const SubmitRunReply sub = c.submitRun(req);

    const JobResultReply res = c.result(sub.jobId, 10'000);
    EXPECT_EQ(res.state, JobState::TimedOut);
    EXPECT_NE(res.error.find("deadline"), std::string::npos);
    EXPECT_FALSE(finished.load()) << "timeout must not wait for the "
                                     "stuck worker";

    // The abandoned worker's late result is discarded: the state
    // stays timeout after the stub finally returns.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(5);
    while (!finished.load() &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE(finished.load());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_EQ(c.result(sub.jobId, 0).state, JobState::TimedOut);

    const ServerStats st = srv.server->stats();
    EXPECT_EQ(st.timedOut, 1u);
    EXPECT_EQ(st.completedOk, 0u);
    EXPECT_EQ(st.lostJobs(), 0u);
}

TEST(ServeServer, SixteenConcurrentClients)
{
    StubServer srv(
        [](const SubmitRunRequest &req) {
            // A little jitter so completions interleave.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1 + req.seed % 5));
            return stubResult();
        },
        /*workers=*/4, /*queue_capacity=*/256);

    constexpr unsigned kClients = 16;
    constexpr unsigned kJobsPerClient = 3;
    std::atomic<unsigned> okCount{0};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kClients; ++t)
        threads.emplace_back([&, t] {
            Client c = srv.client();
            for (unsigned j = 0; j < kJobsPerClient; ++j) {
                SubmitRunRequest req = sampleRequest();
                req.seed = t * 100 + j;
                const SubmitRunReply sub = c.submitRun(req);
                const JobResultReply res =
                    c.result(sub.jobId, 30'000);
                if (res.state == JobState::Ok)
                    okCount.fetch_add(1);
            }
        });
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(okCount.load(), kClients * kJobsPerClient);
    const ServerStats st = srv.server->stats();
    EXPECT_EQ(st.accepted, kClients * kJobsPerClient);
    EXPECT_EQ(st.completedOk, kClients * kJobsPerClient);
    EXPECT_EQ(st.lostJobs(), 0u);
    EXPECT_GE(st.connections, kClients);
}

TEST(ServeServer, DrainFinishesAcceptedJobsAndRefusesNew)
{
    StubServer srv(
        [](const SubmitRunRequest &) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
            return stubResult();
        },
        /*workers=*/2, /*queue_capacity=*/64);
    Client c = srv.client();

    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 6; ++i)
        ids.push_back(c.submitRun(sampleRequest()).jobId);

    const DrainReply d = c.drain();
    EXPECT_GT(d.remainingJobs, 0u);
    EXPECT_EQ(srv.server->state(), ServerStateKind::Draining);

    // New submissions bounce while queries keep working.
    try {
        c.submitRun(sampleRequest());
        FAIL() << "expected Draining";
    } catch (const ServeError &e) {
        EXPECT_EQ(e.code(), ErrCode::Draining);
    }

    // Every accepted job still reaches a terminal state and its
    // result stays collectable during the drain.
    for (std::uint64_t id : ids) {
        const JobResultReply res = c.result(id, 30'000);
        EXPECT_EQ(res.state, JobState::Ok) << "job " << id;
    }

    srv.server->awaitDrained();
    const ServerStats st = srv.server->stats();
    EXPECT_EQ(st.accepted, 6u);
    EXPECT_EQ(st.completedOk, 6u);
    EXPECT_EQ(st.lostJobs(), 0u);
    EXPECT_EQ(st.rejectedDraining, 1u);
}

TEST(ServeServer, GarbageBytesGetTypedErrorThenClose)
{
    StubServer srv([](const SubmitRunRequest &) {
        return stubResult();
    });

    const int fd = rawConnect(srv.server->port());
    const char junk[] = "GET / HTTP/1.1\r\n\r\n";
    ASSERT_TRUE(sendAll(fd,
                        reinterpret_cast<const std::uint8_t *>(junk),
                        sizeof(junk) - 1));

    Frame frame;
    ASSERT_TRUE(readOneFrame(fd, frame));
    EXPECT_EQ(frame.type, MsgType::Error);
    ErrorReply err;
    ASSERT_TRUE(decodeError(frame.payload, err));
    EXPECT_EQ(err.code, ErrCode::Malformed);

    // The server closes the untrusted stream after the error reply.
    std::uint8_t b;
    EXPECT_EQ(::recv(fd, &b, 1, 0), 0);
    ::close(fd);
    EXPECT_GE(srv.server->stats().badFrames, 1u);
}

TEST(ServeServer, WrongVersionAndOversizedFramesGetTypedErrors)
{
    StubServer srv([](const SubmitRunRequest &) {
        return stubResult();
    });

    {
        int fd = rawConnect(srv.server->port());
        auto bytes = encodeFrame(MsgType::Health, {});
        bytes[4] = 0x09;
        ASSERT_TRUE(sendAll(fd, bytes.data(), bytes.size()));
        Frame frame;
        ASSERT_TRUE(readOneFrame(fd, frame));
        ErrorReply err;
        ASSERT_TRUE(decodeError(frame.payload, err));
        EXPECT_EQ(err.code, ErrCode::BadVersion);
        ::close(fd);
    }
    {
        int fd = rawConnect(srv.server->port());
        auto bytes = encodeFrame(MsgType::Health, {});
        const std::uint32_t huge = kMaxPayloadBytes + 7;
        std::memcpy(bytes.data() + 8, &huge, sizeof(huge));
        ASSERT_TRUE(sendAll(fd, bytes.data(), bytes.size()));
        Frame frame;
        ASSERT_TRUE(readOneFrame(fd, frame));
        ErrorReply err;
        ASSERT_TRUE(decodeError(frame.payload, err));
        EXPECT_EQ(err.code, ErrCode::Oversized);
        ::close(fd);
    }

    // A truncated frame (valid prefix, missing payload bytes) must
    // not elicit a reply — the server waits for the rest.
    {
        int fd = rawConnect(srv.server->port());
        const auto full = encodeFrame(
            MsgType::SubmitRun, encodeSubmitRun(sampleRequest()));
        ASSERT_TRUE(sendAll(fd, full.data(), full.size() / 2));
        timeval tv{0, 300'000};
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        std::uint8_t b;
        EXPECT_LT(::recv(fd, &b, 1, 0), 0); // times out, no reply
        // Completing the frame gets the normal reply.
        ASSERT_TRUE(sendAll(fd, full.data() + full.size() / 2,
                            full.size() - full.size() / 2));
        Frame frame;
        ASSERT_TRUE(readOneFrame(fd, frame));
        EXPECT_EQ(frame.type, MsgType::SubmitReply);
        ::close(fd);
    }
}

TEST(ServeServer, MetricsAndHealthEndpoints)
{
    StubServer srv([](const SubmitRunRequest &) {
        return stubResult();
    });
    Client c = srv.client();

    const HealthReply h0 = c.health();
    EXPECT_EQ(h0.state, 0); // serving
    EXPECT_EQ(h0.acceptedJobs, 0u);

    const SubmitRunReply sub = c.submitRun(sampleRequest());
    ASSERT_EQ(c.result(sub.jobId, 10'000).state, JobState::Ok);

    const std::string json = c.metricsJson();
    EXPECT_NE(json.find("\"serve_jobs_accepted\":1"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"serve_jobs_ok\":1"), std::string::npos);
    EXPECT_NE(json.find("\"state\":\"serving\""), std::string::npos);

    const HealthReply h1 = c.health();
    EXPECT_EQ(h1.acceptedJobs, 1u);
    EXPECT_EQ(h1.completedJobs, 1u);
}

TEST(ServeServer, ShutdownRequestDrainsAndFlagsExit)
{
    StubServer srv([](const SubmitRunRequest &) {
        return stubResult();
    });
    Client c = srv.client();
    c.shutdown();
    EXPECT_TRUE(srv.server->shutdownRequested());
    EXPECT_EQ(srv.server->state(), ServerStateKind::Draining);
    srv.server->awaitDrained();
    EXPECT_EQ(srv.server->stats().lostJobs(), 0u);
}

// ---------------------------------------------------------------
// End to end: one real simulation through the daemon
// ---------------------------------------------------------------

TEST(ServeServer, EndToEndRealSimulation)
{
    ServerConfig cfg;
    cfg.workers = 2;
    cfg.bench.scale = 512;
    cfg.bench.instrPerCore = 20'000;
    cfg.bench.minRefsPerCore = 1'000;
    Server server(std::move(cfg));
    server.start();

    ClientConfig ccfg;
    ccfg.port = server.port();
    Client c(ccfg);

    SubmitRunRequest req;
    req.design = "chameleon-opt";
    req.app = "stream";
    req.scale = 512;
    req.instrPerCore = 20'000;
    req.minRefsPerCore = 1'000;
    const SubmitRunReply sub = c.submitRun(req);
    const JobResultReply res = c.result(sub.jobId, 60'000);
    EXPECT_EQ(res.state, JobState::Ok);
    EXPECT_GT(res.ipc, 0.0);
    EXPECT_GT(res.instructions, 0u);
    EXPECT_GT(res.memRefs, 0u);

    // Fault-injected run surfaces as degraded with full stats.
    req.faultStuck = 0.05;
    req.faultRate = 0.002;
    req.seed = 7;
    const SubmitRunReply sub2 = c.submitRun(req);
    const JobResultReply res2 = c.result(sub2.jobId, 60'000);
    EXPECT_EQ(res2.state, JobState::Degraded);
    EXPECT_GT(res2.retiredSegments, 0u);
    EXPECT_GT(res2.ipc, 0.0);

    server.stop();
    EXPECT_EQ(server.stats().lostJobs(), 0u);
}

// ---------------------------------------------------------------
// Protocol fuzz battery (PR 7): seeded, structure-aware mutations
// delivered to a live server over the epoll path. The only
// acceptable outcomes are a typed error reply, a normal reply, or a
// clean close / no reply — never a crash, never a wedged server.
// ---------------------------------------------------------------

namespace
{

enum class FuzzOutcome
{
    GotFrame,
    PeerClosed,
    TimedOut,
};

/** Read one frame with a bounded wait (fuzz inputs may get none). */
FuzzOutcome
readMaybeFrame(int fd, Frame &frame, int timeout_ms)
{
    setIoTimeout(fd, timeout_ms);
    std::vector<std::uint8_t> buf;
    std::uint8_t chunk[4096];
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
        std::size_t consumed = 0;
        if (decodeFrame(buf.data(), buf.size(), frame, consumed) ==
            FrameStatus::Ok)
            return FuzzOutcome::GotFrame;
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n == 0)
            return FuzzOutcome::PeerClosed;
        if (n < 0)
            return FuzzOutcome::TimedOut;
        buf.insert(buf.end(), chunk, chunk + n);
    }
    return FuzzOutcome::TimedOut;
}

/** The server must still answer a pristine request end to end. */
void
expectServerStillHealthy(StubServer &srv)
{
    Client c = srv.client();
    const HealthReply h = c.health();
    EXPECT_EQ(h.state, 0);
    const SubmitRunReply sub = c.submitRun(sampleRequest());
    EXPECT_EQ(c.result(sub.jobId, 10'000).state, JobState::Ok);
}

} // namespace

TEST(ServeFuzz, HeaderBytesFlippedAtEveryOffset)
{
    StubServer srv([](const SubmitRunRequest &) {
        return stubResult();
    });
    const auto valid = encodeFrame(
        MsgType::SubmitRun, encodeSubmitRun(sampleRequest()));

    // Structure-aware: the 12-byte header is magic(4) version(2)
    // type(2) length(4); flip low bit, high bit, and all bits of
    // each byte in turn on a fresh connection.
    for (std::size_t off = 0; off < 12; ++off) {
        for (const std::uint8_t mask : {0x01, 0x80, 0xff}) {
            auto bytes = valid;
            bytes[off] ^= mask;
            const int fd = rawConnect(srv.server->port());
            ASSERT_TRUE(sendAll(fd, bytes.data(), bytes.size()));
            Frame frame;
            const FuzzOutcome out = readMaybeFrame(fd, frame, 250);
            if (out == FuzzOutcome::GotFrame) {
                // A reply must be a well-formed protocol message:
                // either a typed error or, when the mutation was
                // harmless to framing, the normal submit reply.
                EXPECT_TRUE(frame.type == MsgType::Error ||
                            frame.type == MsgType::SubmitReply)
                    << "offset " << off << " mask " << int(mask);
                if (frame.type == MsgType::Error) {
                    ErrorReply err;
                    EXPECT_TRUE(decodeError(frame.payload, err));
                }
            }
            // PeerClosed / TimedOut (e.g. an inflated length field
            // reads as NeedMore) are clean outcomes too.
            ::close(fd);
        }
    }
    expectServerStillHealthy(srv);
}

TEST(ServeFuzz, SeededPayloadMutationsGetTypedRepliesOrErrors)
{
    StubServer srv([](const SubmitRunRequest &) {
        return stubResult();
    });
    const auto valid = encodeFrame(
        MsgType::SubmitRun, encodeSubmitRun(sampleRequest()));

    // Deterministic battery: corrupt 1-3 payload bytes per round.
    // Framing stays intact, so every round must get exactly one
    // reply: SubmitReply (harmless mutation) or a typed Error
    // (Malformed / BadRequest decode failure).
    std::mt19937 rng(0xC0FFEEu);
    std::uniform_int_distribution<std::size_t> pickOffset(
        12, valid.size() - 1);
    std::uniform_int_distribution<int> pickByte(0, 255);
    for (int round = 0; round < 48; ++round) {
        auto bytes = valid;
        const int flips = 1 + round % 3;
        for (int f = 0; f < flips; ++f)
            bytes[pickOffset(rng)] =
                static_cast<std::uint8_t>(pickByte(rng));
        const int fd = rawConnect(srv.server->port());
        ASSERT_TRUE(sendAll(fd, bytes.data(), bytes.size()));
        Frame frame;
        const FuzzOutcome out = readMaybeFrame(fd, frame, 3000);
        ASSERT_EQ(out, FuzzOutcome::GotFrame) << "round " << round;
        EXPECT_TRUE(frame.type == MsgType::Error ||
                    frame.type == MsgType::SubmitReply)
            << "round " << round;
        if (frame.type == MsgType::Error) {
            ErrorReply err;
            EXPECT_TRUE(decodeError(frame.payload, err));
        }
        ::close(fd);
    }
    expectServerStillHealthy(srv);
}

TEST(ServeFuzz, TruncationAtEveryOffsetNeverWedgesTheServer)
{
    StubServer srv([](const SubmitRunRequest &) {
        return stubResult();
    });
    const auto valid = encodeFrame(
        MsgType::SubmitRun, encodeSubmitRun(sampleRequest()));

    // Send every strict prefix, then hang up mid-frame. The server
    // must treat each as an abandoned partial read and clean up.
    for (std::size_t len = 0; len < valid.size(); ++len) {
        const int fd = rawConnect(srv.server->port());
        if (len > 0)
            ASSERT_TRUE(sendAll(fd, valid.data(), len));
        ::close(fd);
    }
    expectServerStillHealthy(srv);
}

TEST(ServeFuzz, InterleavedPartialWritesAcrossWakeups)
{
    StubServer srv([](const SubmitRunRequest &) {
        return stubResult();
    });

    // Two connections drip-feed their frames a few bytes at a time,
    // interleaved, so the server's per-connection reassembly buffers
    // span many epoll wakeups and must not bleed into each other.
    SubmitRunRequest reqA = sampleRequest();
    reqA.seed = 1001;
    const auto frameA =
        encodeFrame(MsgType::SubmitRun, encodeSubmitRun(reqA));
    const auto frameB = encodeFrame(MsgType::Health, {});

    const int fdA = rawConnect(srv.server->port());
    const int fdB = rawConnect(srv.server->port());

    std::size_t offA = 0, offB = 0;
    while (offA < frameA.size() || offB < frameB.size()) {
        if (offA < frameA.size()) {
            const std::size_t n =
                std::min<std::size_t>(3, frameA.size() - offA);
            ASSERT_TRUE(sendAll(fdA, frameA.data() + offA, n));
            offA += n;
        }
        if (offB < frameB.size()) {
            const std::size_t n =
                std::min<std::size_t>(2, frameB.size() - offB);
            ASSERT_TRUE(sendAll(fdB, frameB.data() + offB, n));
            offB += n;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    Frame fa, fb;
    ASSERT_TRUE(readOneFrame(fdA, fa));
    EXPECT_EQ(fa.type, MsgType::SubmitReply);
    ASSERT_TRUE(readOneFrame(fdB, fb));
    EXPECT_EQ(fb.type, MsgType::HealthReply);
    ::close(fdA);
    ::close(fdB);

    expectServerStillHealthy(srv);
}

// ---------------------------------------------------------------
// PR 5 invariants ported to the epoll path
// ---------------------------------------------------------------

TEST(ServeServer, DrainMidBurstAt256ClientsLosesNothing)
{
    StubServer srv(
        [](const SubmitRunRequest &) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
            return stubResult();
        },
        /*workers=*/4, /*queue_capacity=*/4096);

    constexpr unsigned kClients = 256;
    constexpr unsigned kJobsPerClient = 3;
    std::atomic<std::uint64_t> terminalSeen{0};
    std::atomic<std::uint64_t> rejectedDraining{0};
    std::atomic<std::uint64_t> clientErrors{0};

    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (unsigned t = 0; t < kClients; ++t)
        threads.emplace_back([&, t] {
            try {
                Client c = srv.client();
                for (unsigned j = 0; j < kJobsPerClient; ++j) {
                    SubmitRunRequest req = sampleRequest();
                    // Overlapping seeds on purpose: the burst mixes
                    // cache hits, single-flight followers, and
                    // fresh leaders — all must drain cleanly.
                    req.seed = (t * kJobsPerClient + j) % 64;
                    try {
                        const SubmitRunReply sub = c.submitRun(req);
                        const JobResultReply res =
                            c.result(sub.jobId, 60'000);
                        if (jobStateTerminal(res.state))
                            terminalSeen.fetch_add(1);
                    } catch (const ServeError &e) {
                        if (e.kind() ==
                                ServeErrorKind::ServerError &&
                            e.code() == ErrCode::Draining) {
                            rejectedDraining.fetch_add(1);
                            break;
                        }
                        clientErrors.fetch_add(1);
                        break;
                    }
                }
            } catch (...) {
                clientErrors.fetch_add(1);
            }
        });

    // SIGTERM-equivalent mid-burst: chameleond's handler calls
    // exactly this on the flag poll.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    srv.server->requestDrain();

    for (auto &t : threads)
        t.join();
    srv.server->awaitDrained();

    const ServerStats st = srv.server->stats();
    EXPECT_EQ(st.accepted, st.terminal());
    EXPECT_EQ(st.lostJobs(), 0u);
    EXPECT_EQ(st.rejectedDraining, rejectedDraining.load());
    EXPECT_EQ(clientErrors.load(), 0u);
    EXPECT_GE(terminalSeen.load(), 1u);
    EXPECT_EQ(srv.server->state(), ServerStateKind::Draining);
}

TEST(ServeServer, SlowClientIsDroppedWithoutStallingOthers)
{
    StubServer srv(
        [](const SubmitRunRequest &) { return stubResult(); },
        /*workers=*/2, /*queue_capacity=*/64,
        /*default_deadline_ms=*/0, [](ServerConfig &cfg) {
            // Tiny cap so the test trips it quickly.
            cfg.connBacklogBytes = 2048;
        });

    // A peer that pipelines metrics requests and never reads: once
    // the kernel buffers fill, the server-side output queue grows
    // past connBacklogBytes and the peer must be dropped.
    const int slow = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(slow, 0);
    int tiny = 1024;
    ::setsockopt(slow, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(srv.server->port());
    ASSERT_EQ(::connect(slow, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);

    const auto metricsReq = encodeFrame(MsgType::MetricsSnapshot, {});
    bool alive = true;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(30);
    while (alive && srv.server->stats().droppedSlowConns == 0 &&
           std::chrono::steady_clock::now() < deadline) {
        for (int i = 0; i < 100 && alive; ++i)
            alive = sendAll(slow, metricsReq.data(),
                            metricsReq.size());
    }

    // Give the drop a moment to land in the counters.
    const auto settle = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
    while (srv.server->stats().droppedSlowConns == 0 &&
           std::chrono::steady_clock::now() < settle)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_GE(srv.server->stats().droppedSlowConns, 1u);
    ::close(slow);

    // Other clients keep full service while (and after) the slow
    // peer was backlogged: a round trip stays snappy.
    const auto t0 = std::chrono::steady_clock::now();
    Client c = srv.client();
    const HealthReply h = c.health();
    EXPECT_EQ(h.state, 0);
    const SubmitRunReply sub = c.submitRun(sampleRequest());
    EXPECT_EQ(c.result(sub.jobId, 10'000).state, JobState::Ok);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_LT(elapsed_ms, 5000.0);
}
