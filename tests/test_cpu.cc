/**
 * @file
 * Core timing model and TLB tests: MLP window semantics, fault
 * blocking, IPC accounting, TLB LRU and invalidation.
 */

#include <gtest/gtest.h>

#include "cpu/core_model.hh"
#include "cpu/tlb.hh"

using namespace chameleon;

TEST(CoreModel, ComputeAdvancesClockAtCpiOne)
{
    CoreModel core;
    core.retireCompute(100);
    EXPECT_EQ(core.now(), 100u);
    EXPECT_EQ(core.retired(), 100u);
    EXPECT_DOUBLE_EQ(core.ipc(), 1.0);
}

TEST(CoreModel, ReadsOverlapUpToWindow)
{
    CoreConfig cfg;
    cfg.maxOutstanding = 2;
    CoreModel core(cfg);
    // Two misses fit in the window without stalling.
    Cycle t1 = core.issueRead();
    core.completeRead(t1 + 1000);
    Cycle t2 = core.issueRead();
    core.completeRead(t2 + 1000);
    EXPECT_LE(core.now(), 2u + 0u); // only the two retire ticks
    // Third miss must wait for the first to complete.
    Cycle t3 = core.issueRead();
    EXPECT_GE(t3, 1000u);
}

TEST(CoreModel, DrainWaitsForAllOutstanding)
{
    CoreModel core;
    Cycle t = core.issueRead();
    core.completeRead(t + 5000);
    core.drain();
    EXPECT_GE(core.now(), 5000u);
}

TEST(CoreModel, WritesArePosted)
{
    CoreModel core;
    core.retireWrite();
    core.retireWrite();
    EXPECT_EQ(core.now(), 2u);
    EXPECT_EQ(core.retired(), 2u);
}

TEST(CoreModel, FaultBlocksAndIsTracked)
{
    CoreModel core;
    core.retireCompute(10);
    core.blockFor(100'000);
    EXPECT_EQ(core.now(), 100'010u);
    EXPECT_EQ(core.faultStall(), 100'000u);
    EXPECT_LT(core.ipc(), 0.001);
}

TEST(CoreModel, IpcReflectsMemoryStalls)
{
    CoreConfig cfg;
    cfg.maxOutstanding = 1;
    CoreModel core(cfg);
    for (int i = 0; i < 10; ++i) {
        core.retireCompute(10);
        const Cycle t = core.issueRead();
        core.completeRead(t + 90); // 90-cycle memory latency
    }
    core.drain();
    // ~110 instructions over ~10*(10+90) cycles.
    EXPECT_NEAR(core.ipc(), 110.0 / 1000.0, 0.03);
}

TEST(Tlb, HitAfterInstall)
{
    Tlb tlb;
    EXPECT_GT(tlb.lookup(0x1000), 0u);
    EXPECT_EQ(tlb.lookup(0x1fff), 0u); // same page
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, LruEviction)
{
    TlbConfig cfg;
    cfg.entries = 4;
    Tlb tlb(cfg);
    for (Addr p = 0; p < 4; ++p)
        tlb.lookup(p * 4_KiB);
    tlb.lookup(0); // refresh page 0
    tlb.lookup(4 * 4_KiB); // evicts page 1
    EXPECT_EQ(tlb.lookup(0), 0u);
    EXPECT_GT(tlb.lookup(1 * 4_KiB), 0u);
}

TEST(Tlb, InvalidateForcesWalk)
{
    Tlb tlb;
    tlb.lookup(0x2000);
    tlb.invalidate(0x2000);
    EXPECT_GT(tlb.lookup(0x2000), 0u);
}

TEST(Tlb, FlushClearsEverything)
{
    Tlb tlb;
    for (Addr p = 0; p < 8; ++p)
        tlb.lookup(p * 4_KiB);
    tlb.flush();
    EXPECT_GT(tlb.lookup(0), 0u);
}
