/**
 * @file
 * Tests for the experiment/bench scaffolding: CLI parsing, config
 * factories, and the effective-instruction-count rule that keeps
 * low-MPKI applications statistically meaningful.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

using namespace chameleon;

namespace
{

BenchOptions
parse(std::initializer_list<const char *> args)
{
    std::vector<char *> argv;
    static char prog[] = "bench";
    argv.push_back(prog);
    for (const char *a : args)
        argv.push_back(const_cast<char *>(a));
    return parseBenchArgs(static_cast<int>(argv.size()), argv.data());
}

} // namespace

TEST(Experiment, DefaultsAreSane)
{
    const BenchOptions o = parse({});
    EXPECT_EQ(o.scale, 64u);
    EXPECT_EQ(o.stackedFullGiB, 4u);
    EXPECT_EQ(o.offchipFullGiB, 20u);
    EXPECT_GT(o.instrPerCore, 0u);
}

TEST(Experiment, FlagsParse)
{
    const BenchOptions o =
        parse({"--scale", "16", "--instr", "12345", "--refs", "777",
               "--seed", "9", "--stacked-gib", "6", "--offchip-gib",
               "18"});
    EXPECT_EQ(o.scale, 16u);
    EXPECT_EQ(o.instrPerCore, 12345u);
    EXPECT_EQ(o.minRefsPerCore, 777u);
    EXPECT_EQ(o.seed, 9u);
    EXPECT_EQ(o.stackedFullGiB, 6u);
    EXPECT_EQ(o.offchipFullGiB, 18u);
}

TEST(Experiment, WarmupFracParses)
{
    const BenchOptions o = parse({"--warmup-frac", "0.25"});
    EXPECT_DOUBLE_EQ(o.warmupFrac, 0.25);
}

TEST(Experiment, UnknownFlagIsFatal)
{
    EXPECT_DEATH(parse({"--bogus"}), "unknown flag");
}

TEST(Experiment, ZeroScaleIsFatal)
{
    EXPECT_DEATH(parse({"--scale", "0"}), "positive");
}

// Regression: "--orcale" (and every other typo, including the
// formerly tolerated --benchmark* prefix) must error out rather than
// silently run without the requested feature.
TEST(Experiment, TypoedFlagsAreFatal)
{
    EXPECT_DEATH(parse({"--orcale"}), "unknown flag");
    EXPECT_DEATH(parse({"--benchmark_filter=.*"}), "unknown flag");
    EXPECT_DEATH(parse({"--time-out", "5"}), "unknown flag");
}

// Regression: numeric values must parse in full; trailing garbage or
// non-numeric tokens used to be truncated ("--jobs 4x" ran as 4) or
// read as zero ("--seed banana").
TEST(Experiment, MalformedNumericValuesAreFatal)
{
    EXPECT_DEATH(parse({"--jobs", "4x"}), "non-negative integer");
    EXPECT_DEATH(parse({"--seed", "banana"}), "non-negative integer");
    EXPECT_DEATH(parse({"--scale", "-3"}), "non-negative integer");
    EXPECT_DEATH(parse({"--faults", "0.1.2"}), "expects a number");
    EXPECT_DEATH(parse({"--timeout", "abc"}), "expects a number");
}

TEST(Experiment, NonPositiveKnobsAreFatal)
{
    EXPECT_DEATH(parse({"--jobs", "0"}), "at least 1");
    EXPECT_DEATH(parse({"--metrics-interval", "0"}), "positive");
    EXPECT_DEATH(parse({"--timeout", "0"}), "positive");
    EXPECT_DEATH(parse({"--timeout", "-2"}), "positive");
}

TEST(Experiment, ConfigFactoryAppliesOptions)
{
    BenchOptions o = parse({"--scale", "128", "--offchip-gib", "24"});
    const SystemConfig cfg = makeSystemConfig(Design::Pom, o);
    EXPECT_EQ(cfg.scale, 128u);
    EXPECT_EQ(cfg.offchipFullBytes, 24_GiB);
    EXPECT_EQ(cfg.offchipBytes(), 24_GiB / 128);
    EXPECT_EQ(static_cast<int>(cfg.design),
              static_cast<int>(Design::Pom));
}

TEST(Experiment, EffectiveInstructionsRaisesLowMpki)
{
    BenchOptions o;
    o.instrPerCore = 1'000'000;
    o.minRefsPerCore = 40'000;
    AppProfile hot;
    hot.llcMpki = 60.0; // high MPKI: the floor already suffices
    EXPECT_EQ(effectiveInstructions(hot, o), 1'000'000u);
    AppProfile cold;
    cold.llcMpki = 0.2; // low MPKI: needs 200M instructions
    EXPECT_EQ(effectiveInstructions(cold, o), 200'000'000u);
}
